//! The bundled scenario catalog: one ready-to-run [`Scenario`] per
//! deployment shape the reproduction's gates and examples exercise.
//! Run the whole catalog with
//! `cargo run --release -p sleepscale-bench --bin scenarios`
//! (`-- --quick` for the reduced CI smoke pass).

use crate::scenario::{DispatcherSpec, LoadSchedule, MixComponent, Scenario, WorkloadSource};
use sleepscale::{QosConstraint, StrategySpec};
use sleepscale_autoscale::AutoscalerSpec;
use sleepscale_cluster::ServerGroup;
use sleepscale_power::{presets, FrequencyScaling};
use sleepscale_sim::SimEnv;
use sleepscale_traffic::{ArrivalModulator, TrafficClass, TrafficModel};
use sleepscale_workloads::WorkloadSpec;

/// The paper's Section 6 evaluation day: one Xeon server under the
/// full SleepScale runtime (α = 0.35) over the 2 AM–8 PM email-store
/// window with DNS-like service.
pub fn dns_day() -> Scenario {
    let mut scenario = Scenario::new(
        "dns-day-single",
        WorkloadSource::Dns,
        LoadSchedule::EmailStoreDay { seed: 7, start_minute: 120, end_minute: 1200 },
    );
    scenario.fleet[0].over_provisioning = 0.35;
    scenario.eval_jobs = 2_000;
    scenario.dist_samples = 10_000;
    scenario.seed = 7;
    scenario
}

/// The DNS day selected from the closed-form model instead of log
/// replay — the analytic-vs-simulation cross-check partner of
/// [`dns_day`] (compare the two reports to see what the idealized
/// model gives up).
pub fn dns_day_analytic() -> Scenario {
    let mut scenario = dns_day();
    scenario.name = "dns-day-analytic".into();
    scenario.fleet[0].strategy = StrategySpec::analytic();
    scenario
}

/// The PR-3 scale-out gate's fleet: 64 homogeneous Xeon servers behind
/// join-shortest-backlog over a 6-hour morning window — the scenario
/// whose report the `cluster_scale` parity gate checks byte-for-byte
/// against the preserved serial engine.
///
/// This is a throughput/parity recipe preserved verbatim from PR 3
/// (shallow `eval_jobs`, a window that rides the diurnal ramp to its
/// afternoon peak), not a tuned deployment: the fleet knowingly
/// overshoots its nominal budget through the peak, so the scenario
/// declares the wider slack its own history establishes. Tightening
/// any knob here would change the bytes the parity gate pins.
pub fn fleet64() -> Scenario {
    let mut scenario = Scenario::new(
        "fleet-64-homogeneous",
        WorkloadSource::Dns,
        LoadSchedule::EmailStoreDay { seed: 7, start_minute: 480, end_minute: 840 },
    );
    scenario.fleet = vec![ServerGroup::new("fleet", 64, StrategySpec::sleepscale())];
    scenario.dispatcher = DispatcherSpec::JoinShortestBacklog;
    scenario.eval_jobs = 300;
    scenario.dist_samples = 8_000;
    scenario.seed = 2_203;
    scenario.qos_slack = 3.0;
    scenario
}

/// A mixed-generation fleet: half the servers are the Table-2 Xeon,
/// half its higher-idle prose variant — the heterogeneity real racks
/// accumulate across refresh cycles (each group characterizes against
/// its own power model, with its own shared cache).
pub fn mixed_generations() -> Scenario {
    let mut scenario = Scenario::new(
        "mixed-xeon-generations",
        WorkloadSource::Dns,
        LoadSchedule::Constant { rho: 0.25, minutes: 180 },
    );
    scenario.fleet = vec![
        ServerGroup::new("xeon-table2", 8, StrategySpec::sleepscale()),
        ServerGroup {
            env: SimEnv::new(presets::xeon_prose_variant(), FrequencyScaling::CpuBound),
            ..ServerGroup::new("xeon-prose", 8, StrategySpec::sleepscale())
        },
    ];
    scenario.dispatcher = DispatcherSpec::JoinShortestBacklog;
    scenario.eval_jobs = 300;
    scenario.seed = 31;
    scenario
}

/// A per-service QoS split on one machine class: a latency-tier group
/// under a tight budget next to a batch-tier group under a loose one —
/// the per-group constraint shapes each half's operating point.
pub fn qos_split() -> Scenario {
    let mut scenario = Scenario::new(
        "per-group-qos-split",
        WorkloadSource::Dns,
        LoadSchedule::Constant { rho: 0.3, minutes: 180 },
    );
    scenario.fleet = vec![
        ServerGroup {
            qos: QosConstraint::MeanResponse { rho_b: 0.6 },
            ..ServerGroup::new("latency-tier", 4, StrategySpec::sleepscale())
        },
        ServerGroup {
            qos: QosConstraint::MeanResponse { rho_b: 0.9 },
            ..ServerGroup::new("batch-tier", 4, StrategySpec::sleepscale())
        },
    ];
    scenario.dispatcher = DispatcherSpec::RoundRobin;
    scenario.eval_jobs = 300;
    scenario.seed = 32;
    scenario
}

/// Race-to-halt vs SleepScale as an in-fleet A/B: two identical
/// groups, one racing into C6, one running the full runtime, under the
/// same balanced load — the Section 6.1 comparison as one scenario.
pub fn race_vs_sleepscale() -> Scenario {
    let mut scenario = Scenario::new(
        "race-vs-sleepscale-ab",
        WorkloadSource::Dns,
        LoadSchedule::Constant { rho: 0.25, minutes: 180 },
    );
    scenario.fleet = vec![
        ServerGroup::new("sleepscale", 4, StrategySpec::sleepscale()),
        ServerGroup::new("race-to-halt", 4, StrategySpec::race_to_halt_c6()),
    ];
    scenario.dispatcher = DispatcherSpec::RoundRobin;
    scenario.eval_jobs = 300;
    scenario.seed = 33;
    scenario
}

/// A composed-mix workload (DNS + Mail populations) consolidated onto
/// a packed fleet at the low utilizations the paper's introduction
/// describes — heavier-tailed service, packing for deep sleep.
pub fn mixed_workload_packed() -> Scenario {
    let mut scenario = Scenario::new(
        "dns-mail-mix-packed",
        WorkloadSource::Mix(vec![
            MixComponent { spec: WorkloadSpec::dns(), weight: 2.0 },
            MixComponent { spec: WorkloadSpec::mail(), weight: 1.0 },
        ]),
        LoadSchedule::Constant { rho: 0.15, minutes: 180 },
    );
    scenario.fleet = vec![ServerGroup::new("packed", 8, StrategySpec::sleepscale())];
    scenario.dispatcher = DispatcherSpec::PackFirstFit { backlog_seconds: 1.0 };
    scenario.eval_jobs = 300;
    scenario.seed = 34;
    scenario
}

/// The tagged twin of [`mixed_workload_packed`]'s population: DNS and
/// Mail as *class-tagged* streams (sizes drawn per class, arrivals
/// interleaved 2:1) on a shared fleet, each class judged against its
/// own normalized-p95 budget — the per-component response question
/// `WorkloadSource::Mix`'s moment composition cannot answer. The
/// interactive class holds a tight budget while batch rides an order
/// of magnitude looser.
pub fn dns_mail_tagged() -> Scenario {
    let mut scenario = Scenario::new(
        "dns-mail-tagged-mix",
        WorkloadSource::Tagged(TrafficModel {
            classes: vec![
                TrafficClass::new("interactive", WorkloadSpec::dns(), 2.0).with_p95_budget(8.0),
                TrafficClass::new("batch", WorkloadSpec::mail(), 1.0).with_p95_budget(60.0),
            ],
        }),
        LoadSchedule::Constant { rho: 0.3, minutes: 180 },
    );
    scenario.fleet = vec![ServerGroup::new("shared", 8, StrategySpec::sleepscale())];
    scenario.dispatcher = DispatcherSpec::JoinShortestBacklog;
    scenario.eval_jobs = 300;
    scenario.seed = 35;
    scenario
}

/// A flash-crowd day: an interactive class whose arrival rate bursts
/// to 3× for a 40-minute window (the crowd) over a batch class with a
/// gentle diurnal swing of its own — per-class arrival shaping on one
/// fleet, with the interactive class still held to its p95 budget
/// *through the burst*.
pub fn flash_crowd_day() -> Scenario {
    let mut scenario = Scenario::new(
        "flash-crowd-day",
        WorkloadSource::Tagged(TrafficModel {
            classes: vec![
                TrafficClass::new("interactive", WorkloadSpec::dns(), 2.0)
                    .with_p95_budget(8.0)
                    // Inside the first 90 minutes so the `--quick`
                    // (truncated) form still exercises the burst.
                    .with_modulator(ArrivalModulator::Burst {
                        start_minute: 40,
                        end_minute: 80,
                        factor: 3.0,
                    }),
                TrafficClass::new("batch", WorkloadSpec::mail(), 1.0)
                    .with_p95_budget(60.0)
                    .with_modulator(ArrivalModulator::Diurnal { amplitude: 0.4, peak_minute: 120 }),
            ],
        }),
        LoadSchedule::Constant { rho: 0.2, minutes: 240 },
    );
    // The guard band (α = 0.35, the paper's evaluated value) is what
    // lets the per-server controllers absorb the unpredicted 3× crowd
    // without riding a multi-epoch backlog transient.
    scenario.fleet = vec![ServerGroup {
        over_provisioning: 0.35,
        ..ServerGroup::new("shared", 8, StrategySpec::sleepscale())
    }];
    scenario.dispatcher = DispatcherSpec::JoinShortestBacklog;
    scenario.eval_jobs = 300;
    scenario.seed = 36;
    scenario
}

/// The tuned 64-server deployment the ROADMAP asked for next to the
/// preserved [`fleet64`] throughput recipe: same fleet, same diurnal
/// morning-to-peak window, but characterized deeply (`eval_jobs`
/// 1 200) with the paper's evaluated guard band (α = 0.35) — and held
/// to the *nominal* QoS budget (`qos_slack = 1.0`) through the peak,
/// not the wide slack the parity recipe declares for itself.
pub fn fleet64_tuned() -> Scenario {
    let mut scenario = Scenario::new(
        "fleet-64-tuned",
        WorkloadSource::Dns,
        LoadSchedule::EmailStoreDay { seed: 7, start_minute: 480, end_minute: 840 },
    );
    scenario.fleet = vec![ServerGroup {
        over_provisioning: 0.35,
        ..ServerGroup::new("fleet", 64, StrategySpec::sleepscale())
    }];
    scenario.dispatcher = DispatcherSpec::JoinShortestBacklog;
    scenario.eval_jobs = 1_200;
    scenario.dist_samples = 8_000;
    scenario.seed = 2_203;
    scenario.qos_slack = 1.0;
    scenario
}

/// The checkpoint/resume gate's single-server scenario: one Xeon under
/// the full runtime over a short constant-load window — 6 five-minute
/// epochs, so kill-at-every-boundary × resume stays cheap while still
/// crossing enough boundaries to catch cross-epoch state (predictor
/// history, warm starts, ledger carry-over) that a one-epoch run would
/// hide.
pub fn resume_single() -> Scenario {
    let mut scenario = Scenario::new(
        "resume-single",
        WorkloadSource::Dns,
        LoadSchedule::Constant { rho: 0.25, minutes: 30 },
    );
    scenario.eval_jobs = 200;
    scenario.dist_samples = 4_000;
    scenario.seed = 81;
    scenario
}

/// The checkpoint/resume gate's sharded-fleet scenario: 8 servers
/// behind seeded-hash routing, evaluated as 2 shards — the backend
/// whose resume must stay byte-identical across *different* worker
/// thread counts on either side of the kill (shard cursors are
/// re-derived from the epoch clock, never stored).
pub fn resume_fleet_sharded() -> Scenario {
    let mut scenario = Scenario::new(
        "resume-fleet-sharded",
        WorkloadSource::Dns,
        LoadSchedule::Constant { rho: 0.25, minutes: 30 },
    );
    scenario.fleet = vec![ServerGroup::new("fleet", 8, StrategySpec::sleepscale())];
    scenario.dispatcher = DispatcherSpec::SplitUniform { seed: 17 };
    scenario.shards = 2;
    scenario.eval_jobs = 200;
    scenario.dist_samples = 4_000;
    scenario.seed = 82;
    scenario
}

/// The checkpoint/resume gate's tagged-stream scenario: two declared
/// classes on a small fleet behind round-robin — per-class response
/// sketches *and* the dispatcher's own cursor must survive the kill
/// for the resumed report's class slices to land byte-identical.
pub fn resume_tagged() -> Scenario {
    let mut scenario = Scenario::new(
        "resume-tagged",
        WorkloadSource::Tagged(TrafficModel {
            classes: vec![
                TrafficClass::new("interactive", WorkloadSpec::dns(), 2.0).with_p95_budget(20.0),
                TrafficClass::new("batch", WorkloadSpec::mail(), 1.0).with_p95_budget(120.0),
            ],
        }),
        LoadSchedule::Constant { rho: 0.25, minutes: 30 },
    );
    scenario.fleet = vec![ServerGroup::new("shared", 2, StrategySpec::sleepscale())];
    scenario.dispatcher = DispatcherSpec::RoundRobin;
    scenario.eval_jobs = 200;
    scenario.dist_samples = 4_000;
    scenario.seed = 83;
    scenario
}

/// The autoscaling control plane's diurnal day: two tagged classes on
/// a two-tier fleet — interactive on fast Xeons, batch on efficient
/// Atoms — behind class-affinity routing, with the closed-loop
/// autoscaler parking each tier's trailing servers through the
/// overnight trough and waking them (guarded by each class's own p95
/// budget) as the day ramps toward its peak.
pub fn autoscale_day() -> Scenario {
    let mut scenario = Scenario::new(
        "autoscale-day",
        WorkloadSource::Tagged(TrafficModel {
            classes: vec![
                TrafficClass::new("interactive", WorkloadSpec::dns(), 2.0).with_p95_budget(8.0),
                TrafficClass::new("batch", WorkloadSpec::mail(), 1.0).with_p95_budget(60.0),
            ],
        }),
        LoadSchedule::EmailStoreDay { seed: 7, start_minute: 120, end_minute: 1200 },
    );
    scenario.fleet = vec![
        ServerGroup::new("interactive", 8, StrategySpec::sleepscale()),
        ServerGroup {
            env: SimEnv::new(presets::atom(), FrequencyScaling::CpuBound),
            ..ServerGroup::new("batch", 4, StrategySpec::sleepscale())
        },
    ];
    scenario.dispatcher =
        DispatcherSpec::ClassAffinity { class_groups: vec![0, 1], spill_threshold_seconds: 0.1 };
    scenario.autoscaler = Some(AutoscalerSpec::new().with_class_guards(vec![1.5, 5.5]));
    scenario.eval_jobs = 300;
    scenario.seed = 37;
    scenario
}

/// [`autoscale_day`]'s class-blind control arm: the same tagged day on
/// the same two-tier fleet, but behind join-shortest-backlog with the
/// fleet fixed at full size — the baseline family the `autoscale` gate
/// must beat on total energy at equal per-class QoS (the gate also
/// shrinks this fleet to smaller fixed sizes over the same inputs).
pub fn autoscale_day_fixed() -> Scenario {
    let mut scenario = autoscale_day();
    scenario.name = "autoscale-day-fixed".into();
    scenario.dispatcher = DispatcherSpec::JoinShortestBacklog;
    scenario.autoscaler = None;
    scenario
}

/// Every bundled scenario, in catalog order.
pub fn catalog() -> Vec<Scenario> {
    vec![
        dns_day(),
        dns_day_analytic(),
        fleet64(),
        fleet64_tuned(),
        mixed_generations(),
        qos_split(),
        race_vs_sleepscale(),
        mixed_workload_packed(),
        dns_mail_tagged(),
        flash_crowd_day(),
        resume_single(),
        resume_fleet_sharded(),
        resume_tagged(),
        autoscale_day(),
        autoscale_day_fixed(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ScenarioRunner;

    #[test]
    fn catalog_has_the_promised_shapes_and_validates() {
        let all = catalog();
        assert!(all.len() >= 10);
        // Unique names.
        let mut names: Vec<&str> = all.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        // Every scenario (full and quick form) passes validation.
        for scenario in all {
            let name = scenario.name.clone();
            ScenarioRunner::new(scenario.clone()).unwrap_or_else(|e| panic!("{name}: {e}"));
            ScenarioRunner::new(scenario.quick()).unwrap_or_else(|e| panic!("{name} quick: {e}"));
        }
    }

    /// The resume trio covers the gate's whole matrix: single-server,
    /// sharded fleet, and a tagged stream — each crossing several epoch
    /// boundaries so cross-epoch state actually matters.
    #[test]
    fn resume_scenarios_cover_the_gate_matrix() {
        for s in [resume_single(), resume_fleet_sharded(), resume_tagged()] {
            assert!(s.load.minutes() / s.epoch_minutes >= 4, "{}", s.name);
        }
        assert_eq!(resume_single().total_servers(), 1);
        assert!(resume_fleet_sharded().shards > 1);
        assert!(resume_tagged().workload.traffic_model().is_some());
    }

    #[test]
    fn fleet64_matches_the_cluster_scale_gate_recipe() {
        let s = fleet64();
        assert_eq!(s.total_servers(), 64);
        assert_eq!(s.seed, 2_203);
        assert_eq!(s.eval_jobs, 300);
        assert_eq!(s.load.minutes(), 360);
        assert_eq!(s.dispatcher, DispatcherSpec::JoinShortestBacklog);
    }

    /// The acceptance shape for the traffic subsystem: the tagged
    /// DNS+Mail catalog scenario reports *distinct* per-class p95s and
    /// the interactive class meets its own QoS target.
    #[test]
    fn tagged_mix_scenario_reports_distinct_per_class_p95s() {
        let report = ScenarioRunner::new(dns_mail_tagged().quick()).unwrap().run().unwrap();
        let classes = report.classes();
        assert_eq!(classes.len(), 2);
        assert_eq!(classes[0].name, "interactive");
        assert!(classes.iter().all(|c| c.jobs > 0));
        let rel = (classes[0].p95_response_seconds - classes[1].p95_response_seconds).abs()
            / classes[0].p95_response_seconds;
        assert!(
            rel > 0.02,
            "per-class p95s should be distinct: {} vs {}",
            classes[0].p95_response_seconds,
            classes[1].p95_response_seconds
        );
        assert!(classes[0].qos_ok, "interactive must meet its own budget: {classes:?}");
        assert!(report.qos_ok(), "{classes:?}");
    }

    /// The tuned 64-server deployment holds the *nominal* budget
    /// (slack 1.0) — the preserved throughput recipe needed 3.0.
    #[test]
    fn fleet64_tuned_declares_the_nominal_budget() {
        let s = fleet64_tuned();
        assert_eq!(s.total_servers(), 64);
        assert_eq!(s.qos_slack, 1.0);
        assert!(s.eval_jobs > fleet64().eval_jobs);
        assert!(s.fleet[0].over_provisioning > 0.0);
        // The preserved recipe is untouched.
        assert_eq!(fleet64().qos_slack, 3.0);
        assert_eq!(fleet64().fleet[0].over_provisioning, 0.0);
    }

    /// The autoscale family's acceptance shape: the autoscaled day
    /// parks real server-time through the overnight trough (its quick
    /// form *is* the trough) while every class meets its budget; the
    /// fixed control arm shares the fleet shape but never parks.
    #[test]
    fn autoscale_day_quick_parks_and_meets_budgets() {
        let report = ScenarioRunner::new(autoscale_day().quick()).unwrap().run().unwrap();
        assert!(report.parked_server_seconds() > 0.0, "the overnight trough should park");
        assert!(!report.fleet_size_trace().is_empty());
        assert!(report.qos_ok(), "{:?}", report.classes());
        let fixed = ScenarioRunner::new(autoscale_day_fixed().quick()).unwrap().run().unwrap();
        assert_eq!(fixed.parked_server_seconds(), 0.0);
        assert!(fixed.fleet_size_trace().is_empty());
        assert_eq!(fixed.groups().len(), report.groups().len());
    }

    #[test]
    fn ab_scenario_shows_sleepscale_beating_race_to_halt() {
        // The quick form keeps one server per arm; the power ordering
        // (Section 6.1) must already show at this size.
        let report = ScenarioRunner::new(race_vs_sleepscale().quick()).unwrap().run().unwrap();
        let groups = report.groups();
        assert_eq!(groups.len(), 2);
        assert!(
            groups[0].avg_power_watts < groups[1].avg_power_watts,
            "SleepScale {} W should undercut race-to-halt {} W",
            groups[0].avg_power_watts,
            groups[1].avg_power_watts
        );
        assert!(report.qos_ok(), "{groups:?}");
    }
}
