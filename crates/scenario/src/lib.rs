//! One declarative entry point over every SleepScale backend.
//!
//! The reproduction's value is the *joint* (frequency, sleep-state)
//! policy space explored across many workloads and deployment shapes
//! (paper §5–7) — but hand-wiring each experiment (a `RuntimeConfig`
//! here, a strategy builder chain there, a `ClusterConfig` for fleets)
//! buries the experiment's identity in plumbing. This crate redesigns
//! experiment construction around three declarative, serde-derivable
//! types:
//!
//! * [`Scenario`] — the experiment as data: workload source (Table-5
//!   row, custom moments, or a composed mix), arrival-scale schedule
//!   ([`LoadSchedule`]), a fleet of one or more
//!   [`ServerGroup`](sleepscale_cluster::ServerGroup)s (count, machine
//!   class, strategy, QoS, over-provisioning), dispatcher, epochs,
//!   seed, threads.
//! * [`StrategySpec`](sleepscale::StrategySpec) — strategies as data
//!   (re-exported from `sleepscale`), replacing the builder-method
//!   sprawl as the public construction path.
//! * [`ScenarioRunner`] — validates the scenario, picks the backend
//!   (single-server [`sleepscale::run`], its closed-form analytic
//!   variant, or the [`Cluster`](sleepscale_cluster::Cluster) engine),
//!   and returns one unified [`ScenarioReport`] (per-group slices +
//!   merged streaming response summary + cache/warm-start telemetry).
//!
//! A [`catalog`] of bundled scenarios covers the shapes the gates and
//! examples exercise; `cargo run --release -p sleepscale-bench --bin
//! scenarios` runs it end to end.
//!
//! # Example: a two-group heterogeneous fleet
//!
//! Eight Table-2 Xeons under a tight latency budget next to eight
//! higher-idle variants under a loose batch budget, behind
//! join-shortest-backlog, over a diurnal morning:
//!
//! ```no_run
//! use sleepscale_scenario::prelude::*;
//!
//! let mut scenario = Scenario::new(
//!     "latency-and-batch",
//!     WorkloadSource::Dns,
//!     LoadSchedule::EmailStoreDay { seed: 7, start_minute: 480, end_minute: 840 },
//! );
//! scenario.fleet = vec![
//!     ServerGroup {
//!         qos: QosConstraint::mean_response(0.6)?,
//!         ..ServerGroup::new("latency", 8, StrategySpec::sleepscale())
//!     },
//!     ServerGroup {
//!         env: SimEnv::new(presets::xeon_prose_variant(), FrequencyScaling::CpuBound),
//!         qos: QosConstraint::mean_response(0.9)?,
//!         ..ServerGroup::new("batch", 8, StrategySpec::sleepscale())
//!     },
//! ];
//! scenario.dispatcher = DispatcherSpec::JoinShortestBacklog;
//!
//! let report = ScenarioRunner::new(scenario)?.run()?;
//! for group in report.groups() {
//!     println!(
//!         "{:<10} {:>3} servers  µE[R] {:.2} (budget {:.2})  {:>6.0} W",
//!         group.name, group.servers, group.normalized_mean_response,
//!         group.qos_budget, group.avg_power_watts,
//!     );
//! }
//! assert!(report.qos_ok());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod runner;
mod scenario;

pub use runner::{
    Backend, ClassReport, GroupReport, ScenarioReport, ScenarioRunner, JOURNAL_SCHEMA_VERSION,
};
pub use scenario::{DispatcherSpec, LoadSchedule, MixComponent, Scenario, WorkloadSource};
pub use sleepscale_autoscale::AutoscalerSpec;
pub use sleepscale_telemetry::{TelemetryReport, TelemetrySpec};

/// Convenient glob-import surface (includes the upstream types a
/// scenario is declared with).
pub mod prelude {
    pub use crate::catalog;
    pub use crate::{
        AutoscalerSpec, Backend, ClassReport, DispatcherSpec, GroupReport, LoadSchedule,
        MixComponent, Scenario, ScenarioReport, ScenarioRunner, TelemetryReport, TelemetrySpec,
        WorkloadSource,
    };
    pub use sleepscale::{CandidateSpec, PredictorSpec, QosConstraint, SearchMode, StrategySpec};
    pub use sleepscale_cluster::ServerGroup;
    pub use sleepscale_journal::{JournalError, KillPlan};
    pub use sleepscale_power::{presets, FrequencyScaling};
    pub use sleepscale_sim::{ClassId, SimEnv};
    pub use sleepscale_traffic::{ArrivalModulator, TrafficClass, TrafficModel};
}
