//! Multi-server scale-out for SleepScale — the paper's Section 7 future
//! work, built out: "Another research direction involves studying
//! SleepScale on multi-core, multi-server systems … SleepScale can be
//! performed on each core or server independently."
//!
//! A [`Cluster`] holds `N` servers, each running its **own** SleepScale
//! controller (its own predictor, job log, and policy manager) over its
//! own queue, exactly as the paper prescribes. A [`Dispatcher`] routes
//! each arriving job to a server; the choice of dispatcher governs how
//! much sleep opportunity the fleet sees:
//!
//! * [`RoundRobin`] / [`RandomUniform`] — spreading: every server sees a
//!   thinned copy of the trace and idles often but briefly.
//! * [`JoinShortestBacklog`] — classic latency-optimal spreading.
//! * [`PackFirstFit`] — packing: fill the first servers up to a backlog
//!   threshold so the rest of the fleet sleeps deeply (the
//!   energy-proportionality play the paper's Section 1 motivates).
//! * [`SplitUniform`] — stateless seeded-hash spreading: each job's
//!   server is a pure function of its sequence number, which is what
//!   lets [`Cluster::run_sharded`] pre-split the stream and run shards
//!   concurrently with byte-identical results at mega-fleet scale.
//!
//! Dispatchers observe the fleet through an incrementally maintained
//! [`DispatchIndex`] (one O(log N) re-key per dispatched job, no per-job
//! fleet snapshot), epoch control fans out across scoped threads with
//! thread-count-invariant results, and fleet statistics stream into
//! constant memory — see [`Cluster`] for the engine's contract.
//!
//! Fleets are described as a list of [`ServerGroup`]s — mixed machine
//! generations, per-group QoS, and per-group strategies (declared as
//! [`sleepscale::StrategySpec`] data) all run side by side behind one
//! dispatcher, with one shared characterization cache *per group*.
//!
//! # Example
//!
//! ```no_run
//! use sleepscale_cluster::{Cluster, ClusterConfig, PackFirstFit, ServerGroup};
//! use sleepscale::{QosConstraint, RuntimeConfig, StrategySpec};
//! # use sleepscale_workloads::{traces, WorkloadSpec, WorkloadDistributions, ReplayConfig};
//! # use rand::SeedableRng;
//! let spec = WorkloadSpec::dns();
//! let runtime = RuntimeConfig::builder(spec.service_mean())
//!     .qos(QosConstraint::mean_response(0.8)?)
//!     .build()?;
//! // A heterogeneous fleet: six SleepScale servers next to two racing.
//! let config = ClusterConfig::new(
//!     &runtime,
//!     vec![
//!         ServerGroup::new("sleepscale", 6, StrategySpec::sleepscale()),
//!         ServerGroup::new("race", 2, StrategySpec::race_to_halt_c6()),
//!     ],
//! )?;
//! let mut cluster = Cluster::new(config);
//! # let trace = traces::email_store(1, 7).window(480, 600);
//! # let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! # let dists = WorkloadDistributions::empirical(&spec, 4000, &mut rng)?;
//! # let jobs = sleepscale_workloads::replay_trace(&trace, &dists, &ReplayConfig::for_fleet(8), &mut rng)?;
//! let report = cluster.run(&trace, &jobs, &mut PackFirstFit::new(30.0))?;
//! for group in report.group_summaries() {
//!     println!("{}: {:.0} W", group.name, group.avg_power);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod dispatch;
mod report;

pub use cluster::{Cluster, ClusterConfig, ServerGroup};
pub use dispatch::{
    ActiveSet, ClassAffinity, DispatchIndex, Dispatcher, JoinShortestBacklog, PackFirstFit,
    RandomUniform, RoundRobin, RouteDecision, SplitUniform,
};
pub use report::{ClusterReport, GroupSummary, ServerSummary};
