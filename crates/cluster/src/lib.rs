//! Multi-server scale-out for SleepScale — the paper's Section 7 future
//! work, built out: "Another research direction involves studying
//! SleepScale on multi-core, multi-server systems … SleepScale can be
//! performed on each core or server independently."
//!
//! A [`Cluster`] holds `N` servers, each running its **own** SleepScale
//! controller (its own predictor, job log, and policy manager) over its
//! own queue, exactly as the paper prescribes. A [`Dispatcher`] routes
//! each arriving job to a server; the choice of dispatcher governs how
//! much sleep opportunity the fleet sees:
//!
//! * [`RoundRobin`] / [`RandomUniform`] — spreading: every server sees a
//!   thinned copy of the trace and idles often but briefly.
//! * [`JoinShortestBacklog`] — classic latency-optimal spreading.
//! * [`PackFirstFit`] — packing: fill the first servers up to a backlog
//!   threshold so the rest of the fleet sleeps deeply (the
//!   energy-proportionality play the paper's Section 1 motivates).
//!
//! Dispatchers observe the fleet through an incrementally maintained
//! [`DispatchIndex`] (one O(log N) re-key per dispatched job, no per-job
//! fleet snapshot), epoch control fans out across scoped threads with
//! thread-count-invariant results, and fleet statistics stream into
//! constant memory — see [`Cluster`] for the engine's contract.
//!
//! # Example
//!
//! ```no_run
//! use sleepscale_cluster::{Cluster, ClusterConfig, PackFirstFit};
//! use sleepscale::{CandidateSet, QosConstraint, RuntimeConfig};
//! use sleepscale_sim::SimEnv;
//! # use sleepscale_workloads::{traces, WorkloadSpec, WorkloadDistributions, ReplayConfig};
//! # use rand::SeedableRng;
//! let spec = WorkloadSpec::dns();
//! let runtime = RuntimeConfig::builder(spec.service_mean())
//!     .qos(QosConstraint::mean_response(0.8)?)
//!     .build()?;
//! let config = ClusterConfig::new(8, runtime);
//! let mut cluster = Cluster::new(&config, CandidateSet::standard(), SimEnv::xeon_cpu_bound());
//! # let trace = traces::email_store(1, 7).window(480, 600);
//! # let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! # let dists = WorkloadDistributions::empirical(&spec, 4000, &mut rng)?;
//! # let jobs = sleepscale_workloads::replay_trace(&trace, &dists, &ReplayConfig::for_fleet(8), &mut rng)?;
//! let report = cluster.run(&trace, &jobs, &mut PackFirstFit::new(30.0))?;
//! println!("fleet power: {:.0} W", report.total_power_watts());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod dispatch;
mod report;

pub use cluster::{Cluster, ClusterConfig};
pub use dispatch::{
    DispatchIndex, Dispatcher, JoinShortestBacklog, PackFirstFit, RandomUniform, RoundRobin,
};
pub use report::{ClusterReport, ServerSummary};
