use crate::dispatch::{Dispatcher, ServerView};
use crate::report::{ClusterReport, ServerSummary};
use sleepscale::{
    CacheStats, CandidateSet, CharacterizationCache, CoreError, RuntimeConfig, SleepScaleStrategy,
    Strategy,
};
use sleepscale_dist::SummaryStats;
use sleepscale_sim::{JobRecord, JobStream, OnlineSim, SimEnv};
use sleepscale_workloads::UtilizationTrace;

/// Cluster-level configuration: fleet size plus the per-server runtime
/// configuration every controller is instantiated from.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    n_servers: usize,
    runtime: RuntimeConfig,
}

impl ClusterConfig {
    /// A fleet of `n_servers` (clamped to ≥ 1), each running its own
    /// SleepScale controller configured by `runtime`.
    pub fn new(n_servers: usize, runtime: RuntimeConfig) -> ClusterConfig {
        ClusterConfig { n_servers: n_servers.max(1), runtime }
    }

    /// Fleet size.
    pub fn n_servers(&self) -> usize {
        self.n_servers
    }

    /// The per-server runtime configuration.
    pub fn runtime(&self) -> &RuntimeConfig {
        &self.runtime
    }
}

struct ServerSlot {
    sim: OnlineSim,
    strategy: SleepScaleStrategy,
    policy: Option<sleepscale_power::Policy>,
    epoch_records: Vec<JobRecord>,
    epoch_work: f64,
    all_jobs: usize,
    response_sum: f64,
}

/// A fleet of servers, each with its own queue, power state, and
/// SleepScale controller; a [`Dispatcher`] splits the cluster-wide
/// arrival stream across them.
///
/// The fleet is homogeneous, so every server's controller shares one
/// [`CharacterizationCache`]: when the dispatcher balances load, the
/// servers predict the same (quantized) utilization over logs with the
/// same coarse signature, and the first server to characterize an epoch
/// serves every other server's selection from the cache — one sweep per
/// epoch instead of N identical sweeps.
///
/// The utilization trace is interpreted cluster-wide: `ρ(t)` is the
/// offered load as a fraction of *total* fleet capacity, so the job
/// stream should be generated for arrival rate `ρ(t)·N·µ` (see
/// [`Cluster::scale_trace_for_fleet`]).
pub struct Cluster {
    servers: Vec<ServerSlot>,
    cache: CharacterizationCache,
    epoch_seconds: f64,
    mean_service: f64,
    epoch_minutes: usize,
}

impl Cluster {
    /// Builds the fleet; every server gets an independent SleepScale
    /// strategy over `candidates` and its own energy ledger in `env`,
    /// with the characterization cache shared fleet-wide.
    pub fn new(config: &ClusterConfig, candidates: CandidateSet, env: SimEnv) -> Cluster {
        let epoch_seconds = config.runtime().epoch_minutes() as f64 * 60.0;
        let cache = CharacterizationCache::default();
        let servers = (0..config.n_servers())
            .map(|_| ServerSlot {
                sim: OnlineSim::new(env.clone(), epoch_seconds),
                strategy: SleepScaleStrategy::new(config.runtime(), candidates.clone())
                    .with_shared_cache(cache.clone()),
                policy: None,
                epoch_records: Vec::new(),
                epoch_work: 0.0,
                all_jobs: 0,
                response_sum: 0.0,
            })
            .collect();
        Cluster {
            servers,
            cache,
            epoch_seconds,
            mean_service: config.runtime().mean_service(),
            epoch_minutes: config.runtime().epoch_minutes(),
        }
    }

    /// Hit/miss counters of the fleet-shared characterization cache —
    /// `hits` counts the per-server sweeps the sharing eliminated.
    pub fn characterization_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Runs the fleet over a trace and cluster-wide job stream.
    ///
    /// Generate the stream with
    /// [`sleepscale_workloads::ReplayConfig::for_fleet`] so the arrival
    /// *rate* carries the fleet factor while the timeline still follows
    /// the trace (compressing inter-arrivals after the fact would
    /// time-compress the whole day into the first `1/N` of the run).
    ///
    /// # Errors
    ///
    /// Propagates per-server strategy errors.
    pub fn run(
        &mut self,
        trace: &UtilizationTrace,
        jobs: &JobStream,
        dispatcher: &mut dyn Dispatcher,
    ) -> Result<ClusterReport, CoreError> {
        let total_minutes = trace.len();
        let n_epochs = total_minutes.div_ceil(self.epoch_minutes);
        let mut responses: Vec<f64> = Vec::with_capacity(jobs.len());
        // Borrowed cursor over the cluster-wide stream: the dispatch
        // loop consumes arrivals in time order without cloning the
        // remaining stream at epoch boundaries. The dispatcher's view
        // buffer is likewise allocated once and refilled per job.
        let mut cursor = jobs.cursor();
        let mut views: Vec<ServerView> = Vec::with_capacity(self.servers.len());

        for k in 0..n_epochs {
            let epoch_start = k as f64 * self.epoch_seconds;
            let epoch_end = epoch_start + self.epoch_seconds;

            // Every server's controller picks its epoch policy.
            for slot in &mut self.servers {
                slot.policy = Some(slot.strategy.begin_epoch(k)?);
                slot.epoch_records.clear();
                slot.epoch_work = 0.0;
            }

            // Dispatch this epoch's arrivals one at a time; the view the
            // dispatcher sees reflects each server's live backlog.
            while let Some(job) = cursor.next_before(epoch_end) {
                views.clear();
                views.extend(self.servers.iter().enumerate().map(|(index, s)| ServerView {
                    index,
                    backlog_seconds: (s.sim.state().free_time() - job.arrival).max(0.0),
                }));
                let target = dispatcher.route(&job, &views).min(self.servers.len() - 1);
                let slot = &mut self.servers[target];
                let policy = slot.policy.as_ref().expect("policy set at epoch start");
                let out = slot.sim.run_epoch(std::slice::from_ref(&job), policy, epoch_end);
                let record = out.records()[0];
                responses.push(record.response());
                slot.response_sum += record.response();
                slot.all_jobs += 1;
                slot.epoch_work += record.size;
                slot.epoch_records.push(record);
            }

            // Close the epoch: feed logs and per-server realized
            // utilization — dispatched work plus backlog pressure (a
            // backlogged server measures itself saturated; see
            // `sleepscale::run` for the same feedback rule).
            for slot in &mut self.servers {
                let records = std::mem::take(&mut slot.epoch_records);
                slot.strategy.end_epoch(&records);
                let pressure =
                    (slot.sim.state().free_time() - epoch_end).max(0.0) / self.epoch_seconds;
                let rho_server = (slot.epoch_work / self.epoch_seconds + pressure).clamp(0.0, 0.97);
                let minutes = self.epoch_minutes.min(total_minutes - k * self.epoch_minutes);
                for _ in 0..minutes {
                    slot.strategy.observe_minute(rho_server);
                }
            }
        }

        // Close trailing idle periods and summarize.
        let trace_end = total_minutes as f64 * 60.0;
        let horizon =
            self.servers.iter().map(|s| s.sim.state().free_time()).fold(trace_end, f64::max);
        let mut summaries = Vec::with_capacity(self.servers.len());
        for (index, slot) in self.servers.drain(..).enumerate() {
            let jobs_done = slot.all_jobs;
            let mean_response =
                if jobs_done == 0 { 0.0 } else { slot.response_sum / jobs_done as f64 };
            let (ledger, ..) = slot.sim.finish(horizon);
            summaries.push(ServerSummary {
                index,
                jobs: jobs_done,
                mean_response,
                avg_power: ledger.total_energy().as_joules() / horizon,
                energy_joules: ledger.total_energy().as_joules(),
            });
        }
        let stats = SummaryStats::from_samples(responses);
        let (total_jobs, mean_response, p95) = match &stats {
            Some(s) => (s.count(), s.mean(), s.p95()),
            None => (0, 0.0, 0.0),
        };
        Ok(ClusterReport::new(
            dispatcher.name(),
            summaries,
            total_jobs,
            mean_response,
            p95,
            horizon,
            self.mean_service,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{JoinShortestBacklog, PackFirstFit, RandomUniform, RoundRobin};
    use rand::SeedableRng;
    use sleepscale::QosConstraint;
    use sleepscale_workloads::{
        replay_trace, traces, ReplayConfig, WorkloadDistributions, WorkloadSpec,
    };

    fn setup(n: usize, minutes: usize, seed: u64) -> (ClusterConfig, UtilizationTrace, JobStream) {
        let spec = WorkloadSpec::dns();
        let runtime = RuntimeConfig::builder(spec.service_mean())
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .epoch_minutes(5)
            .eval_jobs(300)
            .build()
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
        let trace = traces::email_store(1, 7).window(600, 600 + minutes);
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n), &mut rng).unwrap();
        (ClusterConfig::new(n, runtime), trace, jobs)
    }

    fn run_with(
        dispatcher: &mut dyn Dispatcher,
        config: &ClusterConfig,
        trace: &UtilizationTrace,
        jobs: &JobStream,
    ) -> ClusterReport {
        let mut cluster = Cluster::new(config, CandidateSet::standard(), SimEnv::xeon_cpu_bound());
        cluster.run(trace, jobs, dispatcher).unwrap()
    }

    #[test]
    fn fleet_completes_every_job_and_sums_energy() {
        let (config, trace, jobs) = setup(4, 60, 41);
        let report = run_with(&mut RoundRobin::new(), &config, &trace, &jobs);
        assert_eq!(report.total_jobs(), jobs.len());
        assert_eq!(report.n_servers(), 4);
        let per_server: f64 = report.servers().iter().map(|s| s.energy_joules).sum();
        assert!((per_server - report.total_energy_joules()).abs() < 1e-6);
        // Fleet power within physical bounds.
        assert!(report.total_power_watts() > 4.0 * 28.0);
        assert!(report.total_power_watts() < 4.0 * 250.0);
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let (config, trace, jobs) = setup(4, 60, 42);
        let report = run_with(&mut RoundRobin::new(), &config, &trace, &jobs);
        assert!(report.load_balance_index() > 0.99, "{}", report.load_balance_index());
    }

    fn setup_constant(
        n: usize,
        rho_cluster: f64,
        minutes: usize,
        seed: u64,
    ) -> (ClusterConfig, UtilizationTrace, JobStream) {
        let spec = WorkloadSpec::dns();
        let runtime = RuntimeConfig::builder(spec.service_mean())
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .epoch_minutes(5)
            .eval_jobs(400)
            .build()
            .unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
        let trace = UtilizationTrace::constant(rho_cluster, minutes).unwrap();
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n), &mut rng).unwrap();
        (ClusterConfig::new(n, runtime), trace, jobs)
    }

    /// Consolidation pays where the paper's introduction says it does:
    /// at the 15–30% utilizations data centers actually run at, where
    /// idle power dominates. (At high utilization packing *loses* — it
    /// forces high clocks whose cubic busy power outweighs the idle
    /// savings.)
    #[test]
    fn packing_concentrates_load_and_saves_power_at_low_utilization() {
        let (config, trace, jobs) = setup_constant(4, 0.15, 60, 43);
        let spread = run_with(&mut JoinShortestBacklog::new(), &config, &trace, &jobs);
        // Pack up to ~1 s of backlog (≈ the response budget) per server.
        let packed = run_with(&mut PackFirstFit::new(1.0), &config, &trace, &jobs);
        assert!(
            packed.load_balance_index() < spread.load_balance_index(),
            "packing {} vs spreading {}",
            packed.load_balance_index(),
            spread.load_balance_index()
        );
        assert!(
            packed.total_power_watts() < spread.total_power_watts() - 10.0,
            "packing {:.0} W should beat spreading {:.0} W at low load",
            packed.total_power_watts(),
            spread.total_power_watts()
        );
    }

    /// At high load, queueing dominates and backlog-aware routing is
    /// structurally better than blind random routing.
    #[test]
    fn shortest_backlog_beats_random_on_response_at_high_load() {
        let (config, trace, jobs) = setup_constant(4, 0.75, 60, 44);
        let jsb = run_with(&mut JoinShortestBacklog::new(), &config, &trace, &jobs);
        let random = run_with(&mut RandomUniform::new(9), &config, &trace, &jobs);
        assert!(
            jsb.mean_response_seconds() <= random.mean_response_seconds(),
            "JSB {} vs random {}",
            jsb.mean_response_seconds(),
            random.mean_response_seconds()
        );
    }

    /// Homogeneous servers under balanced dispatch share one
    /// characterization per epoch: the fleet cache must absorb most of
    /// the per-server selections.
    #[test]
    fn homogeneous_fleet_shares_characterizations() {
        // Long enough that predictor warm-up (where per-server
        // predictions straddle ρ buckets) stops dominating.
        let (config, trace, jobs) = setup_constant(4, 0.3, 180, 46);
        let mut cluster = Cluster::new(&config, CandidateSet::standard(), SimEnv::xeon_cpu_bound());
        cluster.run(&trace, &jobs, &mut RoundRobin::new()).unwrap();
        let stats = cluster.characterization_stats();
        assert!(
            stats.hits > stats.misses,
            "balanced homogeneous fleet should mostly hit the shared cache: {stats:?}"
        );
        // 4 servers × 36 epochs ≈ 140 selections after cold start;
        // sharing must eliminate well over half the sweeps.
        assert!(stats.hits >= 80, "{stats:?}");
    }

    #[test]
    fn single_server_cluster_matches_core_runtime_shape() {
        let (config, trace, jobs) = setup(1, 30, 45);
        let report = run_with(&mut RoundRobin::new(), &config, &trace, &jobs);
        assert_eq!(report.n_servers(), 1);
        assert_eq!(report.total_jobs(), jobs.len());
        assert!(report.normalized_mean_response() < 10.0);
    }

    #[test]
    fn fleet_replay_densifies_without_time_compression() {
        // ReplayConfig::for_fleet(n) must multiply the arrival *rate*
        // while arrivals still span the whole trace window.
        let spec = WorkloadSpec::dns();
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
        let trace = UtilizationTrace::constant(0.4, 30).unwrap();
        let single = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
        let fleet = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(4), &mut rng).unwrap();
        let ratio = fleet.len() as f64 / single.len() as f64;
        assert!((ratio - 4.0).abs() < 0.4, "rate ratio {ratio}");
        // Timeline preserved: the last arrival still lands near the end.
        assert!(fleet.last_arrival() > 0.9 * 30.0 * 60.0);
    }
}
