use crate::dispatch::{ActiveSet, DispatchIndex, Dispatcher, RouteDecision};
use crate::report::{ClusterReport, ServerSummary};
use serde::{Deserialize, Serialize};
use sleepscale::{
    CacheStats, CharacterizationCache, CharacterizationKey, CoreError, QosConstraint,
    RuntimeConfig, Selection, SleepScaleStrategy, Strategy, StrategySpec, WarmStartStats,
    DEFAULT_CACHE_CAPACITY,
};
use sleepscale_autoscale::{AutoscaleController, AutoscalerSpec, GroupLoad, ScaleReason};
use sleepscale_dist::{QuantileSketch, ScalarSummary, StreamingSummary};
use sleepscale_power::{ep, Policy, PowerSample, SleepProgram, SleepStage};
use sleepscale_sim::{Job, JobCursor, JobRecord, JobStream, OnlineSim, SimEnv, StreamSplit};
use sleepscale_telemetry::{
    metrics, MetricsRegistry, ScaleCause, TelemetryReport, TelemetrySpec, TraceEvent,
};
use sleepscale_workloads::UtilizationTrace;
use std::collections::HashSet;

/// One homogeneous slice of a (possibly heterogeneous) fleet: `count`
/// identical servers of one machine class (`env`), each running an
/// independent strategy built from the same declarative `strategy`
/// spec, under one QoS constraint and over-provisioning factor.
///
/// Real scale-out deployments mix server generations and per-service
/// QoS (the energy-proportionality literature's heterogeneous racks);
/// a fleet is a `Vec<ServerGroup>` and every group keeps its own
/// shared characterization cache, so cache sharing and owner election
/// stay correct — and byte-identical — per group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerGroup {
    /// Display name (e.g. `"xeon-2019"`, `"atom-edge"`).
    pub name: String,
    /// Servers in this group.
    pub count: usize,
    /// The machine class: power model + frequency-scaling law.
    pub env: SimEnv,
    /// The per-server strategy, as data.
    pub strategy: StrategySpec,
    /// The group's QoS constraint.
    pub qos: QosConstraint,
    /// The group's over-provisioning factor `α`.
    pub over_provisioning: f64,
}

impl ServerGroup {
    /// A group of `count` Xeon-class servers under the paper's default
    /// QoS (`ρ_b = 0.8`) with no guard band; override fields with
    /// struct-update syntax for other shapes.
    pub fn new(name: impl Into<String>, count: usize, strategy: StrategySpec) -> ServerGroup {
        ServerGroup {
            name: name.into(),
            count,
            env: SimEnv::xeon_cpu_bound(),
            strategy,
            qos: QosConstraint::MeanResponse { rho_b: 0.8 },
            over_provisioning: 0.0,
        }
    }
}

/// Cluster-level configuration: the fleet's server groups plus the
/// per-group runtime configurations resolved against a base
/// [`RuntimeConfig`] (which contributes the workload-level knobs every
/// group shares: mean service time, epoch length, evaluation depth,
/// log capacity, predictor history).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    groups: Vec<ServerGroup>,
    runtimes: Vec<RuntimeConfig>,
}

impl ClusterConfig {
    /// Resolves a fleet of server groups against `base`: each group's
    /// runtime configuration takes its `env`, `qos`, and
    /// `over_provisioning` from the group and everything else from
    /// `base`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for an empty fleet or a
    /// zero-count group — an accidental empty fleet should fail loudly
    /// at configuration time, not be clamped or panic mid-run.
    pub fn new(base: &RuntimeConfig, groups: Vec<ServerGroup>) -> Result<ClusterConfig, CoreError> {
        if groups.is_empty() {
            return Err(CoreError::InvalidConfig {
                reason: "a cluster needs at least one server group".into(),
            });
        }
        let runtimes = groups
            .iter()
            .map(|group| {
                if group.count == 0 {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "server group '{}' has zero servers — drop the group instead of \
                             leaving it empty",
                            group.name
                        ),
                    });
                }
                RuntimeConfig::builder(base.mean_service())
                    .qos(group.qos)
                    .epoch_minutes(base.epoch_minutes())
                    .eval_jobs(base.eval_jobs())
                    .log_capacity(base.log_capacity())
                    .over_provisioning(group.over_provisioning)
                    .predictor_history(base.predictor_history())
                    .env(group.env.clone())
                    .build()
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ClusterConfig { groups, runtimes })
    }

    /// The classic single-group fleet: `n_servers` identical servers,
    /// each running the default SleepScale strategy, with `env`, QoS,
    /// and `α` taken from `runtime` itself.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `n_servers` is zero.
    pub fn homogeneous(
        n_servers: usize,
        runtime: RuntimeConfig,
    ) -> Result<ClusterConfig, CoreError> {
        let group = ServerGroup {
            name: "fleet".into(),
            count: n_servers,
            env: runtime.env().clone(),
            strategy: StrategySpec::sleepscale(),
            qos: runtime.qos(),
            over_provisioning: runtime.over_provisioning(),
        };
        ClusterConfig::new(&runtime, vec![group])
    }

    /// The fleet's server groups, in slot order (group 0's servers take
    /// the lowest dispatch indices).
    pub fn groups(&self) -> &[ServerGroup] {
        &self.groups
    }

    /// The resolved runtime configuration of group `g`.
    pub fn runtime_for(&self, g: usize) -> &RuntimeConfig {
        &self.runtimes[g]
    }

    /// Total fleet size (sum over groups).
    pub fn n_servers(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// The fleet-wide policy update interval `T` in minutes (shared by
    /// every group).
    pub fn epoch_minutes(&self) -> usize {
        self.runtimes[0].epoch_minutes()
    }
}

/// A server's live strategy: the concrete SleepScale type when the
/// group's spec is managed (the engine needs it for characterization
/// planning and cache sharing), a boxed [`Strategy`] otherwise.
enum SlotStrategy {
    Managed(Box<SleepScaleStrategy>),
    Plain(Box<dyn Strategy + Send>),
}

impl SlotStrategy {
    fn begin_epoch(&mut self, epoch: usize) -> Result<Policy, CoreError> {
        match self {
            SlotStrategy::Managed(s) => s.begin_epoch(epoch),
            SlotStrategy::Plain(s) => s.begin_epoch(epoch),
        }
    }

    fn end_epoch(&mut self, records: &[JobRecord]) {
        match self {
            SlotStrategy::Managed(s) => s.end_epoch(records),
            SlotStrategy::Plain(s) => s.end_epoch(records),
        }
    }

    fn observe_minute(&mut self, rho: f64) {
        match self {
            SlotStrategy::Managed(s) => s.observe_minute(rho),
            SlotStrategy::Plain(s) => s.observe_minute(rho),
        }
    }

    fn planned_characterization(&mut self) -> Option<CharacterizationKey> {
        match self {
            SlotStrategy::Managed(s) => s.planned_characterization(),
            SlotStrategy::Plain(_) => None,
        }
    }

    fn is_characterization_cached(&self, key: &CharacterizationKey) -> bool {
        match self {
            SlotStrategy::Managed(s) => s.is_characterization_cached(key),
            SlotStrategy::Plain(_) => false,
        }
    }

    fn warm_start_stats(&self) -> WarmStartStats {
        match self {
            SlotStrategy::Managed(s) => s.warm_start_stats(),
            SlotStrategy::Plain(_) => WarmStartStats::default(),
        }
    }

    fn wants_epoch_records(&self) -> bool {
        match self {
            SlotStrategy::Managed(_) => true,
            SlotStrategy::Plain(s) => s.wants_epoch_records(),
        }
    }

    fn last_prediction(&self) -> f64 {
        match self {
            SlotStrategy::Managed(s) => s.last_prediction(),
            SlotStrategy::Plain(s) => s.last_prediction(),
        }
    }

    fn last_selection(&self) -> Option<&Selection> {
        match self {
            SlotStrategy::Managed(s) => s.last_selection(),
            SlotStrategy::Plain(s) => s.last_selection(),
        }
    }
}

struct ServerSlot {
    group: usize,
    sim: OnlineSim,
    strategy: SlotStrategy,
    policy: Option<Policy>,
    epoch_records: Vec<JobRecord>,
    epoch_work: f64,
    all_jobs: usize,
    response_sum: f64,
    /// Whether `strategy` reads `end_epoch` records; when it doesn't
    /// (fixed policies, race-to-halt), the dispatch loop skips the
    /// per-epoch record buffer entirely — at mega-fleet sizes that
    /// buffer churn is pure waste.
    wants_records: bool,
    /// Per-slot scalar response statistics (count/moments/extrema).
    /// The fleet summary folds these in slot order at the end of the
    /// run — a fixed fold order, so the merged moments are
    /// byte-identical however dispatch work was spread across shards
    /// or worker threads. Quantile sketches stay per-shard (they merge
    /// exactly), keeping the per-slot state at ~40 bytes instead of
    /// ~38 KiB, which is what makes 100k-server fleets fit.
    responses: ScalarSummary,
    /// Per-class scalar slices, indexed by `ClassId`; grown on demand
    /// and only touched for genuinely tagged streams.
    class_stats: Vec<ScalarSummary>,
    /// Characterization cache hit/miss counts, tallied per slot in the
    /// parallel `begin` phase (telemetry-metrics runs only) and summed
    /// in slot order at the merge — so the merged counters are worker-
    /// and shard-count invariant like everything else in the report.
    cache_hits: u64,
    cache_misses: u64,
}

/// Jobs per locality segment in the serial sharded loop (~24 MB of
/// scratch at 24 B/job): large enough to amortize the bucketing pass,
/// small enough that the reusable scratch stays a rounding error next
/// to a mega-fleet stream.
const SHARD_SEGMENT: usize = 1 << 20;

/// Per-shard dispatch state that persists across epochs: the position
/// in the shard's pre-split arrival order and the shard's quantile
/// sketches. Sketch merges add bucket counts exactly, so folding shard
/// sketches in shard order yields the same bytes as one fleet-wide
/// sketch — shard count cannot leak into any reported quantile. There
/// is no backlog index here: seeded-hash routing is a pure function of
/// the job's sequence number, so shards never consult (and need never
/// maintain) queue depths.
struct ShardState {
    pos: usize,
    sketch: QuantileSketch,
    class_sketches: Vec<QuantileSketch>,
}

/// Everything a shard's epoch loop reads but never writes, bundled so
/// the per-shard workers share one immutable view of the run.
#[derive(Clone, Copy)]
struct EpochCtx {
    split: StreamSplit,
    n_servers: usize,
    epoch_end: f64,
    tagged: bool,
}

/// A fleet of servers, each with its own queue, power state, and
/// per-server controller; a [`Dispatcher`] splits the cluster-wide
/// arrival stream across them.
///
/// The engine is built for scale-out fleets (§7 grown to the scale the
/// energy-proportionality literature studies):
///
/// * **Incremental dispatch** — routing reads an incrementally
///   maintained [`DispatchIndex`] (one O(log N) re-key per dispatched
///   job) instead of rebuilding a per-job O(N) fleet snapshot.
/// * **Parallel epoch control** — per-server policy selection and
///   epoch close-out fan out across scoped threads. Before the fan-out,
///   the engine elects one *owner* per distinct missing
///   characterization key per group (the first server planning it,
///   exactly the server that would compute it in a serial sweep), so
///   fleet results are byte-identical for every thread count.
/// * **Streaming statistics** — fleet response aggregates fold into a
///   constant-memory [`StreamingSummary`] instead of an O(total-jobs)
///   sample vector (the p95 is sketched to ±0.5% relative; counts,
///   means, and energy stay exact).
/// * **Heterogeneous fleets** — the fleet is a list of
///   [`ServerGroup`]s (mixed machine generations, per-group QoS and
///   strategies). Within a group every managed controller shares one
///   [`CharacterizationCache`]: when the dispatcher balances load, the
///   group's servers predict the same (quantized) utilization over
///   logs with the same coarse signature, and the first server to
///   characterize an epoch serves the rest of its group from the cache
///   — one sweep per group per epoch instead of one per server. Caches
///   are strictly per group (a cache is only valid between identically
///   configured managers), which keeps heterogeneous fleets exactly as
///   reproducible as homogeneous ones.
///
/// The utilization trace is interpreted cluster-wide: `ρ(t)` is the
/// offered load as a fraction of *total* fleet capacity, so the job
/// stream should be generated for arrival rate `ρ(t)·N·µ`.
pub struct Cluster {
    config: ClusterConfig,
    caches: Vec<CharacterizationCache>,
    threads: usize,
    last_warm: WarmStartStats,
    autoscaler: Option<AutoscalerSpec>,
    telemetry: Option<TelemetrySpec>,
    last_telemetry: Option<TelemetryReport>,
}

impl Cluster {
    /// Builds the fleet descriptor; each [`Cluster::run`] instantiates a
    /// fresh set of servers from it (so back-to-back runs start from
    /// identical cold fleets), every server getting an independent
    /// strategy lowered from its group's spec and its own energy
    /// ledger, with one characterization cache shared per group and
    /// persistent across runs.
    pub fn new(config: ClusterConfig) -> Cluster {
        // Each group's cache is sized so a fleet-day's distinct keys
        // fit without eviction: owner election (and hence
        // byte-reproducibility across engines and thread counts)
        // relies on keys staying resident between the planning peek
        // and the epoch's inserts.
        let caches = config
            .groups()
            .iter()
            .map(|g| CharacterizationCache::new(Cluster::cache_capacity(g.count)))
            .collect();
        Cluster {
            config,
            caches,
            threads: 0,
            last_warm: WarmStartStats::default(),
            autoscaler: None,
            telemetry: None,
            last_telemetry: None,
        }
    }

    /// The shared cache capacity for an `n`-server group: large enough
    /// that a day of per-server key churn never evicts (eviction order
    /// under concurrent owner inserts is schedule-dependent, so the
    /// no-eviction regime is what makes fleet runs reproducible).
    pub fn cache_capacity(n_servers: usize) -> usize {
        DEFAULT_CACHE_CAPACITY.max(n_servers * 128)
    }

    /// Pins the worker count for the parallel epoch-control phases
    /// (0, the default, sizes to the machine). Results are identical
    /// for every value — the knob exists so tests and benches can prove
    /// exactly that — as long as no group cache evicts (owner election
    /// peeks at residency, and eviction order under concurrent inserts
    /// is schedule-dependent). [`Cluster::cache_capacity`] sizes the
    /// caches for that regime; a run that still overflows one reports
    /// `characterization_stats().evictions > 0`, which is the signal
    /// that byte-reproducibility is no longer guaranteed.
    pub fn with_threads(mut self, threads: usize) -> Cluster {
        self.threads = threads;
        self
    }

    /// Arms the closed-loop autoscaler: at every epoch boundary a
    /// fleet-wide controller compares each group's realized utilization
    /// (dispatched work plus backlog overhang, over the *active*
    /// servers) against the spec's hysteresis band, parks trailing
    /// drained servers of over-provisioned groups in the spec's deep
    /// C-state (drained, excluded from dispatch, idling on the parked
    /// ladder), and wakes them — paying the modeled wake latency at
    /// active power — when load returns or any guarded class's p95
    /// drifts past its budget. Every decision is a pure function of
    /// epoch-boundary state, so autoscaled runs keep the engine's
    /// byte-determinism across worker and shard counts.
    ///
    /// With `None` (the default) the engine takes the exact code paths
    /// it always has: existing runs are byte-identical to a build
    /// without this feature.
    pub fn with_autoscaler(mut self, spec: AutoscalerSpec) -> Cluster {
        self.autoscaler = Some(spec);
        self
    }

    /// Arms the telemetry layer for subsequent runs: with
    /// `spec.trace_events` each server records its structured trace
    /// (C-state/idle residency, wakes, per-epoch policy decisions) into
    /// a per-slot buffer, and the engine appends fleet-level events
    /// (dispatch spills, autoscaler park/wake with the triggering
    /// reason); with `spec.metrics` the engine tallies the monotonic
    /// counter registry. Both are merged at the run's serial slot-order
    /// merge point, so the collected telemetry is byte-identical across
    /// worker and shard counts. Collect with
    /// [`Cluster::take_telemetry`] after the run.
    ///
    /// Telemetry never flows through [`ClusterReport`]; an unarmed
    /// cluster takes the exact pre-telemetry code paths (each emit site
    /// is one `Option` check inside the per-server simulator).
    pub fn with_telemetry(mut self, spec: TelemetrySpec) -> Cluster {
        self.telemetry = Some(spec);
        self
    }

    /// Takes the telemetry collected by the most recent run (events in
    /// slot order, fleet-level events appended in simulation-time
    /// order; counters in first-registered order). `None` when the
    /// cluster was not armed with [`Cluster::with_telemetry`] or no run
    /// has completed since.
    pub fn take_telemetry(&mut self) -> Option<TelemetryReport> {
        self.last_telemetry.take()
    }

    /// The fleet configuration this cluster was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Hit/miss counters summed over every group's shared cache —
    /// `hits` counts the per-server sweeps the sharing eliminated.
    pub fn characterization_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for cache in &self.caches {
            let stats = cache.stats();
            total.hits += stats.hits;
            total.misses += stats.misses;
            total.evictions += stats.evictions;
            total.entries += stats.entries;
        }
        total
    }

    /// Per-group cache counters, in group order.
    pub fn group_characterization_stats(&self) -> Vec<(String, CacheStats)> {
        self.config
            .groups()
            .iter()
            .zip(&self.caches)
            .map(|(g, c)| (g.name.clone(), c.stats()))
            .collect()
    }

    /// Aggregated cross-epoch warm-start counters of the most recent
    /// [`Cluster::run`] (how many per-program bowl searches on cache
    /// misses started from a remembered bottom, and how many boundary
    /// searches hit the remembered QoS boundary).
    pub fn warm_start_stats(&self) -> WarmStartStats {
        self.last_warm
    }

    fn build_slots(&self) -> Vec<ServerSlot> {
        let epoch_seconds = self.config.epoch_minutes() as f64 * 60.0;
        let mut slots = Vec::with_capacity(self.config.n_servers());
        for (gi, group) in self.config.groups().iter().enumerate() {
            let runtime = self.config.runtime_for(gi);
            for _ in 0..group.count {
                let strategy = match group.strategy.build_managed(runtime) {
                    Some(managed) => {
                        // An uncached spec opted out of sharing; a cached
                        // one joins the group's fleet-shared cache.
                        SlotStrategy::Managed(Box::new(if group.strategy.is_cached() {
                            managed.with_shared_cache(self.caches[gi].clone())
                        } else {
                            managed
                        }))
                    }
                    None => SlotStrategy::Plain(group.strategy.build(runtime)),
                };
                let wants_records = strategy.wants_epoch_records();
                slots.push(ServerSlot {
                    group: gi,
                    sim: OnlineSim::new(runtime.env().clone(), epoch_seconds),
                    strategy,
                    policy: None,
                    epoch_records: Vec::new(),
                    epoch_work: 0.0,
                    all_jobs: 0,
                    response_sum: 0.0,
                    wants_records,
                    responses: ScalarSummary::new(),
                    class_stats: Vec::new(),
                    cache_hits: 0,
                    cache_misses: 0,
                });
            }
        }
        slots
    }

    fn worker_count(&self, slots: usize) -> usize {
        let threads = if self.threads == 0 {
            std::thread::available_parallelism().map_or(4, |n| n.get())
        } else {
            self.threads
        };
        threads.min(slots.max(1))
    }

    /// Runs a fresh fleet over a trace and cluster-wide job stream.
    /// The cluster itself is reusable: each call builds its servers
    /// anew (only the per-group shared characterization caches
    /// persist), so back-to-back runs on one `Cluster` are supported
    /// and, with warm caches, byte-identical.
    ///
    /// Generate the stream with
    /// [`sleepscale_workloads::ReplayConfig::for_fleet`] so the arrival
    /// *rate* carries the fleet factor while the timeline still follows
    /// the trace (compressing inter-arrivals after the fact would
    /// time-compress the whole day into the first `1/N` of the run).
    ///
    /// # Errors
    ///
    /// Propagates per-server strategy errors, and rejects a dispatcher
    /// that routes outside the fleet (`route() >= n_servers`) — an
    /// out-of-range route is a dispatcher bug, not something to clamp
    /// silently onto the last server.
    pub fn run(
        &mut self,
        trace: &UtilizationTrace,
        jobs: &JobStream,
        dispatcher: &mut dyn Dispatcher,
    ) -> Result<ClusterReport, CoreError> {
        Ok(self
            .run_inner(trace, jobs, Routing::Central(dispatcher), None, None)?
            .expect("run without a checkpoint sink always completes"))
    }

    /// The checkpoint-aware form of [`Cluster::run`]: same engine, but
    /// optionally seeded from a prior epoch-boundary snapshot and
    /// optionally emitting one snapshot per completed epoch (see
    /// [`sleepscale::run_resumable`] for the sink/resume contract).
    ///
    /// The snapshot captures every per-slot simulator, strategy memory,
    /// the group caches, the dispatcher's routing state, and the fleet
    /// statistics, so a resumed run is byte-identical to the
    /// uninterrupted one. The dispatcher must be freshly constructed
    /// from the same configuration that produced the snapshot; worker
    /// thread counts may differ freely between the runs.
    ///
    /// # Errors
    ///
    /// Propagates strategy/dispatcher errors, sink errors, and
    /// [`CoreError::Checkpoint`] for malformed `resume_from` bytes or a
    /// snapshot taken under different routing.
    pub fn run_checkpointed(
        &mut self,
        trace: &UtilizationTrace,
        jobs: &JobStream,
        dispatcher: &mut dyn Dispatcher,
        resume_from: Option<&[u8]>,
        sink: Option<sleepscale::CheckpointSink<'_>>,
    ) -> Result<Option<ClusterReport>, CoreError> {
        self.run_inner(trace, jobs, Routing::Central(dispatcher), resume_from, sink)
    }

    /// Runs the fleet *sharded*: servers are partitioned into `shards`
    /// contiguous slices, the arrival stream is pre-split across them
    /// by `split` (a pure function of the split seed and each job's
    /// sequence number — never of timing), and every shard runs its
    /// full dispatch loop concurrently with its own [`DispatchIndex`]
    /// and streaming accumulators.
    ///
    /// The report is **byte-identical for every shard count**,
    /// including `shards = 1` and including [`Cluster::run`] with a
    /// [`crate::SplitUniform`] dispatcher built from the same seed:
    /// the job→server map is the seeded hash in both engines, each
    /// server therefore serves the same jobs in the same order, epoch
    /// control stays fleet-wide (serial owner election, synchronized
    /// begin/close phases), and the statistics merge along
    /// order-insensitive paths (exact sketch bucket adds across
    /// shards) or fixed-order folds (per-slot scalar moments folded in
    /// slot order). Backlog-aware dispatchers cannot shard this way —
    /// their routing reads fleet-wide live state — which is why this
    /// entry point takes a [`StreamSplit`], not a [`Dispatcher`].
    ///
    /// `shards` is clamped to `[1, n_servers]`; worker threads (set by
    /// [`Cluster::with_threads`]) are shared across shards, so shard
    /// count and thread count can be tuned independently without
    /// touching the bytes.
    ///
    /// # Errors
    ///
    /// Propagates per-server strategy errors, and rejects streams of
    /// more than `u32::MAX` jobs (the pre-split stores `u32` indices).
    pub fn run_sharded(
        &mut self,
        trace: &UtilizationTrace,
        jobs: &JobStream,
        split: StreamSplit,
        shards: usize,
    ) -> Result<ClusterReport, CoreError> {
        Ok(self
            .run_inner(trace, jobs, Routing::Sharded { split, shards }, None, None)?
            .expect("run without a checkpoint sink always completes"))
    }

    /// The checkpoint-aware form of [`Cluster::run_sharded`] (see
    /// [`Cluster::run_checkpointed`] for the sink/resume contract).
    /// Resuming requires the same split seed and shard count the
    /// snapshot was taken under (shard count shapes the per-shard
    /// sketch state, even though it never shapes the report bytes);
    /// worker thread counts may differ freely.
    ///
    /// # Errors
    ///
    /// Propagates strategy errors, sink errors, and
    /// [`CoreError::Checkpoint`] for malformed `resume_from` bytes or a
    /// shard-count/routing mismatch.
    pub fn run_sharded_checkpointed(
        &mut self,
        trace: &UtilizationTrace,
        jobs: &JobStream,
        split: StreamSplit,
        shards: usize,
        resume_from: Option<&[u8]>,
        sink: Option<sleepscale::CheckpointSink<'_>>,
    ) -> Result<Option<ClusterReport>, CoreError> {
        self.run_inner(trace, jobs, Routing::Sharded { split, shards }, resume_from, sink)
    }

    fn run_inner(
        &mut self,
        trace: &UtilizationTrace,
        jobs: &JobStream,
        routing: Routing<'_>,
        resume_from: Option<&[u8]>,
        mut sink: Option<sleepscale::CheckpointSink<'_>>,
    ) -> Result<Option<ClusterReport>, CoreError> {
        let mut slots = self.build_slots();
        let n = slots.len();
        let threads = self.worker_count(n);
        // Telemetry arming. Events accumulate in per-slot buffers (the
        // only parallel phases touch disjoint slots, so no sink is ever
        // called from concurrent code) and merge at the serial
        // slot-order merge point below; fleet-level events (dispatch
        // spills, autoscaler transitions) append after in simulation-
        // time order. Unarmed runs take the pre-telemetry code paths.
        let trace_on = self.telemetry.is_some_and(|t| t.trace_events);
        let metrics_on = self.telemetry.is_some_and(|t| t.metrics);
        self.last_telemetry = None;
        if (trace_on || metrics_on) && (resume_from.is_some() || sink.is_some()) {
            return Err(CoreError::InvalidConfig {
                reason: "telemetry composes with neither checkpoint sinks nor resume — run \
                         without telemetry or without checkpointing"
                    .into(),
            });
        }
        if trace_on {
            for (i, slot) in slots.iter_mut().enumerate() {
                slot.sim.enable_trace(i as u32);
            }
        }
        let mut fleet_events: Vec<TraceEvent> = Vec::new();
        let mut spill_count: u64 = 0;
        let mut fallback_count: u64 = 0;
        let mut park_count: u64 = 0;
        let mut scale_wake_count: u64 = 0;
        let total_minutes = trace.len();
        let epoch_minutes = self.config.epoch_minutes();
        let n_epochs = total_minutes.div_ceil(epoch_minutes);
        let epoch_seconds = epoch_minutes as f64 * 60.0;
        // Per-class slices only arm for genuinely multi-class streams;
        // untagged fleets (and single-class tagged ones, whose class
        // *is* the default) skip the per-job class accounting and
        // report empty slices — byte-identical to the pre-tag engine.
        let tagged = jobs.is_tagged();
        let dispatcher_name = match &routing {
            Routing::Central(dispatcher) => dispatcher.name(),
            // Same format as `SplitUniform::name`, so a sharded run and
            // a central run over the same split report identically.
            Routing::Sharded { split, .. } => format!("split-uniform({})", split.seed()),
        };

        // Autoscaling plumbing: group geometry, the controller, and the
        // sleep program parked servers idle on. Active servers are
        // always a *prefix* of each group's slot range (the controller
        // parks from the tail and wakes the lowest parked slot), so the
        // active set is two small vectors rebuilt only on transitions.
        // When the autoscaler is off every vector stays untouched and
        // dispatch takes the exact pre-autoscaler code paths.
        let group_sizes: Vec<usize> = self.config.groups().iter().map(|g| g.count).collect();
        let group_starts: Vec<usize> = group_sizes
            .iter()
            .scan(0usize, |at, &size| {
                let start = *at;
                *at += size;
                Some(start)
            })
            .collect();
        let mut controller = match &self.autoscaler {
            Some(spec) => {
                spec.validate().map_err(|reason| CoreError::InvalidConfig { reason })?;
                if spec.wake_latency_seconds >= epoch_seconds {
                    return Err(CoreError::InvalidConfig {
                        reason: format!(
                            "autoscaler wake latency {}s must be shorter than the {}s epoch",
                            spec.wake_latency_seconds, epoch_seconds
                        ),
                    });
                }
                Some(AutoscaleController::new(spec.clone(), group_sizes.clone()))
            }
            None => None,
        };
        let park_program = match &self.autoscaler {
            Some(spec) => Some(SleepProgram::immediate(
                SleepStage::new(spec.park_state, 0.0, spec.wake_latency_seconds).map_err(|e| {
                    CoreError::InvalidConfig { reason: format!("autoscaler park state: {e}") }
                })?,
            )),
            None => None,
        };
        let autoscaled = controller.is_some();
        let mut active_slots: Vec<usize> = (0..n).collect();
        let mut active_groups: Vec<(usize, usize)> =
            group_starts.iter().zip(&group_sizes).map(|(&start, &count)| (start, count)).collect();

        let mut state = match routing {
            // Central: one sequential dispatch loop over the whole
            // fleet — a borrowed cursor consumes arrivals in time
            // order, one fleet-wide backlog index, one fleet-wide
            // sketch set.
            Routing::Central(dispatcher) => DispatchState::Central {
                dispatcher,
                cursor: jobs.cursor(),
                index: DispatchIndex::new(n),
                sketch: QuantileSketch::new(),
                class_sketches: Vec::new(),
            },
            // Sharded: pre-split the whole stream before simulating.
            // Each job's server is the seeded hash of its sequence
            // number; its shard follows from the server, so the
            // job→server map — and with it every per-server arrival
            // subsequence — is independent of the shard count.
            Routing::Sharded { split, shards } => {
                let chunk = n.div_ceil(shards.clamp(1, n));
                let n_shards = n.div_ceil(chunk);
                // With one worker the stream is never copied wholesale:
                // the serial loop buckets bounded *segments* of the
                // epoch into reusable per-shard scratch and dispatches
                // shard by shard within each segment (see the dispatch
                // arm below for why the bytes cannot differ from the
                // concurrent walk).
                //
                // With real workers, each shard's order holds *copies*
                // of its jobs, not indices into the shared stream: a
                // shard reads its arrivals from one contiguous run
                // instead of gather-loading the jobs array through an
                // index indirection (the concurrent loop's dominant
                // cache miss). Memory doubles the stream (24 B/job)
                // for the run's duration.
                // Autoscaled sharded runs always take the serial
                // segment path below: each job's lane is drawn over the
                // epoch's *active* count and mapped through the active
                // set, which cannot be pre-split before the controller
                // has run. The job→server map stays a pure function of
                // (seed, sequence, active set), so the bytes remain
                // shard- and thread-count invariant.
                let orders: Vec<Vec<Job>> = if threads <= 1 || autoscaled {
                    Vec::new()
                } else {
                    let mut orders: Vec<Vec<Job>> = vec![Vec::new(); n_shards];
                    for lane in &mut orders {
                        lane.reserve(jobs.len() / n_shards + jobs.len() / (n_shards * 8) + 16);
                    }
                    for job in jobs.jobs() {
                        orders[split.lane_of(job, n) / chunk].push(*job);
                    }
                    orders
                };
                let states = (0..n_shards)
                    .map(|_| ShardState {
                        pos: 0,
                        sketch: QuantileSketch::new(),
                        class_sketches: Vec::new(),
                    })
                    .collect();
                DispatchState::Sharded {
                    split,
                    chunk,
                    cursor: jobs.cursor(),
                    orders,
                    scratch: vec![Vec::new(); n_shards],
                    states,
                }
            }
        };

        let mut start_epoch = 0;
        if let Some(bytes) = resume_from {
            use sleepscale_journal::{ByteReader, CodecError, Snapshot};
            let mut r = ByteReader::new(bytes);
            let done = r.get_usize()?;
            if done >= n_epochs {
                return Err(CoreError::Checkpoint {
                    reason: format!("snapshot is at epoch {done} but the run has only {n_epochs}"),
                });
            }
            for slot in slots.iter_mut() {
                let tag = r.get_u8()?;
                let runtime = self.config.runtime_for(slot.group);
                slot.sim = OnlineSim::restore_state(runtime.env().clone(), &mut r)?;
                match (&mut slot.strategy, tag) {
                    (SlotStrategy::Managed(s), 0) => s.restore_checkpoint(&mut r, false)?,
                    (SlotStrategy::Plain(s), 1) => s.restore_state(&mut r)?,
                    (_, tag) => {
                        return Err(CodecError::Invalid(format!(
                            "slot strategy kind tag {tag} disagrees with the fleet configuration"
                        ))
                        .into());
                    }
                }
                slot.all_jobs = r.get_usize()?;
                slot.response_sum = r.get_f64()?;
                slot.responses = ScalarSummary::restore(&mut r)?;
                slot.class_stats = Vec::restore(&mut r)?;
            }
            for cache in &self.caches {
                cache.restore_state(&mut r)?;
            }
            // The boundary the snapshot was sealed at, spelled exactly
            // as the epoch loop computes it (the stream fast-forwards
            // below compare against it bit-for-bit).
            let resumed_end = done as f64 * epoch_seconds + epoch_seconds;
            let mode = r.get_u8()?;
            match &mut state {
                DispatchState::Central { dispatcher, cursor, index, sketch, class_sketches } => {
                    if mode != 0 {
                        return Err(CoreError::Checkpoint {
                            reason: "snapshot was taken under sharded routing".into(),
                        });
                    }
                    cursor.seek(r.get_usize()?);
                    dispatcher.restore_state(&mut r)?;
                    *sketch = QuantileSketch::restore(&mut r)?;
                    *class_sketches = Vec::restore(&mut r)?;
                    // The index mirrors each slot's committed-work
                    // horizon at every instant; rebuild it from the
                    // restored simulators.
                    for (i, slot) in slots.iter().enumerate() {
                        index.update(i, slot.sim.state().free_time());
                    }
                }
                DispatchState::Sharded { cursor, orders, states, .. } => {
                    if mode != 1 {
                        return Err(CoreError::Checkpoint {
                            reason: "snapshot was taken under central routing".into(),
                        });
                    }
                    let n_shards = r.get_usize()?;
                    if n_shards != states.len() {
                        return Err(CoreError::Checkpoint {
                            reason: format!(
                                "snapshot has {n_shards} shards but this run has {} — resume \
                                 with the shard count the snapshot was taken under",
                                states.len()
                            ),
                        });
                    }
                    for shard in states.iter_mut() {
                        shard.sketch = QuantileSketch::restore(&mut r)?;
                        shard.class_sketches = Vec::restore(&mut r)?;
                    }
                    // Stream positions are not stored: the serial and
                    // threaded walks advance different position sets,
                    // and the kill and the resume may use different
                    // worker counts. Both sets are pure functions of
                    // the sealed boundary, so fast-forward each to the
                    // first arrival at or past it.
                    cursor.seek(jobs.jobs().partition_point(|j| j.arrival < resumed_end));
                    for (s, shard) in states.iter_mut().enumerate() {
                        shard.pos = orders
                            .get(s)
                            .map_or(0, |o| o.partition_point(|j| j.arrival < resumed_end));
                    }
                }
            }
            if let Some(ctrl) = controller.as_mut() {
                *ctrl = AutoscaleController::restore_state(
                    self.autoscaler.clone().expect("controller implies a spec"),
                    group_sizes.clone(),
                    &mut r,
                )?;
                rebuild_active(ctrl.active(), &group_starts, &mut active_slots, &mut active_groups);
                // Parked slots are routing-invisible: their restored
                // free time is finite (the boundary they were parked
                // at), but the rebuilt index must never route to them.
                if let DispatchState::Central { index, .. } = &mut state {
                    for (g, &m) in ctrl.active().iter().enumerate() {
                        for i in group_starts[g] + m..group_starts[g] + group_sizes[g] {
                            index.set_unavailable(i);
                        }
                    }
                }
            }
            if !r.is_empty() {
                return Err(CodecError::Invalid(format!(
                    "{} trailing bytes after fleet snapshot",
                    r.remaining()
                ))
                .into());
            }
            start_epoch = done + 1;
        }

        for k in start_epoch..n_epochs {
            let epoch_start = k as f64 * epoch_seconds;
            let epoch_end = epoch_start + epoch_seconds;

            // Epoch open, phase 1 — owner election (serial, no
            // simulation): one owner per distinct characterization key
            // that is missing from its group's shared cache, always
            // the lowest-indexed server planning that key — the same
            // server that would compute it in a serial sweep, which is
            // what makes the fleet thread-count invariant. Keys are
            // claimed per group: caches are never shared across
            // groups, so the same key in two groups needs two owners.
            let mut claimed: HashSet<(usize, CharacterizationKey)> = HashSet::new();
            let owners: Vec<bool> = slots
                .iter_mut()
                .map(|slot| {
                    let group = slot.group;
                    slot.strategy.planned_characterization().is_some_and(|key| {
                        !slot.strategy.is_characterization_cached(&key)
                            && claimed.insert((group, key))
                    })
                })
                .collect();

            // Phase 2 — owners characterize in parallel (distinct keys,
            // so concurrent inserts never collide), then the rest of
            // the fleet selects in parallel against caches that now
            // hold every key this epoch needs (pure hits/cold starts —
            // no inserts, hence schedule-independent).
            let begin = |slot: &mut ServerSlot| -> Result<(), CoreError> {
                let prev_freq = slot.policy.as_ref().map(|p| p.frequency().get());
                slot.policy = Some(slot.strategy.begin_epoch(k)?);
                if trace_on || metrics_on {
                    // Managed strategies expose their selection; a
                    // `None` selection (fixed policies, race-to-halt)
                    // is neither a cache hit nor a miss.
                    let selection = slot.strategy.last_selection();
                    let cache_hit = selection.is_some_and(|s| s.evaluated == 0);
                    if metrics_on && selection.is_some() {
                        if cache_hit {
                            slot.cache_hits += 1;
                        } else {
                            slot.cache_misses += 1;
                        }
                    }
                    if trace_on {
                        let evaluated = selection.map_or(0, |s| s.evaluated) as u32;
                        let policy = slot.policy.as_ref().expect("just assigned");
                        let freq = policy.frequency().get();
                        let program = policy.program().label();
                        let server = slot.sim.trace_server().expect("trace_on enabled every slot");
                        slot.sim.trace_push(TraceEvent::EpochDecision {
                            server,
                            epoch: k as u32,
                            predicted_rho: slot.strategy.last_prediction(),
                            frequency: freq,
                            program,
                            evaluated,
                            cache_hit,
                        });
                        if let Some(prev) = prev_freq {
                            if prev != freq {
                                slot.sim.trace_push(TraceEvent::FrequencyChange {
                                    server,
                                    epoch: k as u32,
                                    from: prev,
                                    to: freq,
                                });
                            }
                        }
                    }
                }
                slot.epoch_records.clear();
                slot.epoch_work = 0.0;
                Ok(())
            };
            for want in [true, false] {
                let subset: Vec<&mut ServerSlot> = slots
                    .iter_mut()
                    .zip(&owners)
                    .filter(|(_, &owns)| owns == want)
                    .map(|(slot, _)| slot)
                    .collect();
                par_each(subset, threads, &begin)?;
            }

            // Dispatch this epoch's arrivals.
            match &mut state {
                // Central: one job at a time in stream order; routing
                // reads the incrementally maintained index (the live
                // backlog ordering) and each dispatch re-keys exactly
                // the routed server.
                DispatchState::Central { dispatcher, cursor, index, sketch, class_sketches } => {
                    let active = autoscaled.then(|| ActiveSet::new(&active_slots, &active_groups));
                    while let Some(job) = cursor.next_before(epoch_end) {
                        let target = match &active {
                            Some(set) => dispatcher.route_active(&job, index, set),
                            None => dispatcher.route(&job, index),
                        };
                        if target >= n {
                            return Err(CoreError::InvalidConfig {
                                reason: format!(
                                    "dispatcher '{}' routed job {} to server {target} of a \
                                     {n}-server fleet — routes must be < n_servers",
                                    dispatcher.name(),
                                    job.id
                                ),
                            });
                        }
                        if trace_on || metrics_on {
                            // Spill/fallback classification of the route
                            // just taken — only preference-aware
                            // dispatchers report anything but Preferred.
                            let (fallback, preferred_group) = match dispatcher.last_route() {
                                RouteDecision::Preferred => (None, 0),
                                RouteDecision::Spill { preferred_group } => {
                                    (Some(false), preferred_group)
                                }
                                RouteDecision::Fallback { preferred_group } => {
                                    (Some(true), preferred_group)
                                }
                            };
                            if let Some(fallback) = fallback {
                                if metrics_on {
                                    if fallback {
                                        fallback_count += 1;
                                    } else {
                                        spill_count += 1;
                                    }
                                }
                                if trace_on {
                                    fleet_events.push(TraceEvent::DispatchSpill {
                                        job: job.id,
                                        class: job.class().0,
                                        preferred_group,
                                        target_server: target as u32,
                                        fallback,
                                    });
                                }
                            }
                        }
                        let slot = &mut slots[target];
                        dispatch_one(slot, &job, epoch_end, tagged, sketch, class_sketches);
                        index.update(target, slot.sim.state().free_time());
                    }
                }
                // Sharded: every shard walks its own pre-split arrival
                // order concurrently. Shards own disjoint `&mut` slot
                // slices and disjoint state, so no locks; how shards
                // are grouped onto workers cannot matter, because each
                // shard's work is touched by exactly one worker and
                // shards share nothing mutable.
                DispatchState::Sharded { split, chunk, cursor, orders, scratch, states } => {
                    let ctx = EpochCtx { split: *split, n_servers: n, epoch_end, tagged };
                    let chunk = *chunk;
                    if threads <= 1 || autoscaled {
                        // Serial: bucket the epoch into bounded
                        // segments of per-shard scratch, then dispatch
                        // shard by shard within each segment. Shard-
                        // grouping a segment keeps each shard's slot
                        // working set cache-resident (the mega-fleet
                        // win) while the reusable scratch caps fresh
                        // memory at one segment (~24 MB) instead of a
                        // full stream copy. The bytes cannot differ
                        // from the concurrent walk: segment order and
                        // shard-grouping both preserve every *slot's*
                        // arrival subsequence (so per-slot float
                        // streams are identical), and shard sketches
                        // see the same multiset of responses as exact
                        // commutative u64 bucket adds.
                        // Autoscaled: the lane is drawn over the active
                        // count and mapped through the active set — the
                        // seeded hash spreads each epoch's jobs across
                        // exactly the awake servers, and the map stays
                        // independent of shard and thread counts.
                        let slot_of = |job: &Job| match autoscaled {
                            true => active_slots[split.lane_of(job, active_slots.len())],
                            false => split.lane_of(job, n),
                        };
                        let batch = cursor.take_before(epoch_end);
                        for segment in batch.chunks(SHARD_SEGMENT) {
                            for lane in scratch.iter_mut() {
                                lane.clear();
                            }
                            for job in segment {
                                scratch[slot_of(job) / chunk].push(*job);
                            }
                            for (s, lane) in scratch.iter().enumerate() {
                                let shard = &mut states[s];
                                let shard_slots = &mut slots[s * chunk..n.min((s + 1) * chunk)];
                                for job in lane {
                                    let target = slot_of(job) - s * chunk;
                                    dispatch_one(
                                        &mut shard_slots[target],
                                        job,
                                        epoch_end,
                                        tagged,
                                        &mut shard.sketch,
                                        &mut shard.class_sketches,
                                    );
                                }
                            }
                        }
                    } else {
                        let mut tasks: Vec<(usize, &mut [ServerSlot], &mut ShardState)> = slots
                            .chunks_mut(chunk)
                            .zip(states.iter_mut())
                            .enumerate()
                            .map(|(s, (shard_slots, shard))| (s, shard_slots, shard))
                            .collect();
                        let workers = threads.min(tasks.len());
                        let orders = &*orders;
                        let per_worker = tasks.len().div_ceil(workers);
                        std::thread::scope(|scope| {
                            for group in tasks.chunks_mut(per_worker) {
                                scope.spawn(move || {
                                    for (s, shard_slots, shard) in group {
                                        run_shard_epoch(
                                            shard_slots,
                                            shard,
                                            &orders[*s],
                                            *s * chunk,
                                            ctx,
                                        );
                                    }
                                });
                            }
                        });
                    }
                }
            }

            // Epoch close, in parallel: feed logs and per-server
            // realized utilization — dispatched work plus backlog
            // pressure (a backlogged server measures itself saturated;
            // see `sleepscale::run` for the same feedback rule).
            let minutes = epoch_minutes.min(total_minutes - k * epoch_minutes);
            let close = |slot: &mut ServerSlot| -> Result<(), CoreError> {
                slot.strategy.end_epoch(&slot.epoch_records);
                let pressure = (slot.sim.state().free_time() - epoch_end).max(0.0) / epoch_seconds;
                let rho_server = (slot.epoch_work / epoch_seconds + pressure).clamp(0.0, 0.97);
                for _ in 0..minutes {
                    slot.strategy.observe_minute(rho_server);
                }
                Ok(())
            };
            par_each(slots.iter_mut().collect(), threads, &close)?;

            // Autoscaler control tick: observe the epoch that just
            // closed, re-plan the active prefixes, and apply the
            // transitions — all before the snapshot sink, so a resumed
            // run restarts from the post-transition fleet. The last
            // boundary only records (a transition there could never
            // serve a job, it would only smear parked energy past the
            // trace end).
            if let Some(ctrl) = controller.as_mut() {
                // Per-group realized load, summed in slot order: the
                // dispatched work plus the committed-work overhang past
                // the boundary. Parked slots contribute zero on both
                // axes, so the sums range over the active prefixes.
                let mut loads = vec![GroupLoad::default(); group_sizes.len()];
                for slot in slots.iter() {
                    let load = &mut loads[slot.group];
                    load.busy_seconds += slot.epoch_work;
                    load.backlog_seconds += (slot.sim.state().free_time() - epoch_end).max(0.0);
                }
                // QoS pressure reads the run-so-far per-class p95s —
                // the same sketches the report quotes, merged in shard
                // order when sharded (exact bucket adds, so the merged
                // value is shard-count invariant).
                let qos = if ctrl.spec().class_p95_guards_seconds.is_empty() {
                    false
                } else {
                    let p95s: Vec<f64> = match &state {
                        DispatchState::Central { class_sketches, .. } => {
                            class_sketches.iter().map(QuantileSketch::p95).collect()
                        }
                        DispatchState::Sharded { states, .. } => {
                            let mut merged: Vec<QuantileSketch> = Vec::new();
                            for shard in states {
                                for (c, s) in shard.class_sketches.iter().enumerate() {
                                    if c >= merged.len() {
                                        merged.resize_with(c + 1, QuantileSketch::new);
                                    }
                                    merged[c].merge(s);
                                }
                            }
                            merged.iter().map(QuantileSketch::p95).collect()
                        }
                    };
                    ctrl.spec().qos_pressure(&p95s)
                };
                let before: Vec<usize> = ctrl.active().to_vec();
                let decisions = ctrl.plan_epoch(&loads, epoch_seconds, qos);
                if k + 1 < n_epochs {
                    let program = park_program.as_ref().expect("autoscaled runs build one");
                    let mut central_index = match &mut state {
                        DispatchState::Central { index, .. } => Some(index),
                        DispatchState::Sharded { .. } => None,
                    };
                    for g in 0..group_sizes.len() {
                        let start = group_starts[g];
                        let (old, target) = (before[g], ctrl.active()[g]);
                        if target < old {
                            // Park from the tail, drained servers only:
                            // stop at the first slot still carrying
                            // work past the boundary and settle the
                            // difference back into the controller.
                            let mut achieved = old;
                            for i in (target..old).rev() {
                                let slot = &mut slots[start + i];
                                if slot.sim.state().free_time() > epoch_end {
                                    break;
                                }
                                let freq = slot.policy.as_ref().expect("epoch began").frequency();
                                slot.sim.park(epoch_end, program.clone(), freq);
                                if let Some(index) = central_index.as_deref_mut() {
                                    index.set_unavailable(start + i);
                                }
                                if metrics_on {
                                    park_count += 1;
                                }
                                if trace_on {
                                    fleet_events.push(TraceEvent::Park {
                                        server: (start + i) as u32,
                                        at: epoch_end,
                                        cause: scale_cause(decisions[g].reason),
                                    });
                                }
                                achieved = i;
                            }
                            if achieved != target {
                                ctrl.settle_active(g, achieved);
                            }
                        } else if target > old {
                            // Wake the lowest parked slots: charge the
                            // parked gap under the parked ladder and
                            // the wake-up latency at active power, then
                            // hand the slot back to its policy.
                            let power = self.config.runtime_for(g).env().power();
                            for i in old..target {
                                let slot = &mut slots[start + i];
                                let policy = slot.policy.as_ref().expect("epoch began");
                                let freq = policy.frequency();
                                let next_idle = (policy.program().clone(), freq);
                                slot.sim.wake(epoch_end, power.active_power(freq), next_idle);
                                if let Some(index) = central_index.as_deref_mut() {
                                    index.update(start + i, slot.sim.state().free_time());
                                }
                                if metrics_on {
                                    scale_wake_count += 1;
                                }
                                if trace_on {
                                    fleet_events.push(TraceEvent::Unpark {
                                        server: (start + i) as u32,
                                        at: epoch_end,
                                        cause: scale_cause(decisions[g].reason),
                                    });
                                }
                            }
                        }
                    }
                    rebuild_active(
                        ctrl.active(),
                        &group_starts,
                        &mut active_slots,
                        &mut active_groups,
                    );
                }
            }

            if let Some(sink) = sink.as_deref_mut() {
                use sleepscale_journal::{ByteWriter, Snapshot};
                let mut w = ByteWriter::new();
                w.put_usize(k);
                for slot in slots.iter() {
                    match &slot.strategy {
                        SlotStrategy::Managed(s) => {
                            w.put_u8(0);
                            slot.sim.snapshot_state(&mut w);
                            // Group caches are shared; snapshotted once
                            // per group below, not once per slot.
                            s.snapshot_checkpoint(&mut w, false);
                        }
                        SlotStrategy::Plain(s) => {
                            w.put_u8(1);
                            slot.sim.snapshot_state(&mut w);
                            s.snapshot_state(&mut w);
                        }
                    }
                    w.put_usize(slot.all_jobs);
                    w.put_f64(slot.response_sum);
                    slot.responses.snapshot(&mut w);
                    slot.class_stats.snapshot(&mut w);
                }
                for cache in &self.caches {
                    cache.snapshot_state(&mut w);
                }
                match &state {
                    DispatchState::Central {
                        dispatcher, cursor, sketch, class_sketches, ..
                    } => {
                        w.put_u8(0);
                        w.put_usize(cursor.position());
                        dispatcher.snapshot_state(&mut w);
                        sketch.snapshot(&mut w);
                        class_sketches.snapshot(&mut w);
                    }
                    DispatchState::Sharded { states, .. } => {
                        w.put_u8(1);
                        w.put_usize(states.len());
                        for shard in states {
                            shard.sketch.snapshot(&mut w);
                            shard.class_sketches.snapshot(&mut w);
                        }
                    }
                }
                if let Some(ctrl) = &controller {
                    ctrl.snapshot_state(&mut w);
                }
                if !sink(k, w.as_bytes())? {
                    return Ok(None);
                }
            }
        }

        // Close trailing idle periods and summarize. This loop is the
        // deterministic merge point for the energy split: it runs
        // serially in slot order over per-slot ledgers, so the merged
        // per-class and per-bucket bytes are thread-count invariant.
        let trace_end = total_minutes as f64 * 60.0;
        let horizon = slots.iter().map(|s| s.sim.state().free_time()).fold(trace_end, f64::max);
        self.last_warm = WarmStartStats::default();
        let n_groups = self.config.groups().len();
        let mut summaries = Vec::with_capacity(n);
        // Canonical fleet statistics: fold the per-slot scalar
        // summaries in slot order (a fixed fold order, so the merged
        // moments are byte-invariant across shard and worker counts) —
        // the sketches merge separately below, by exact bucket adds.
        let mut fleet_scalar = ScalarSummary::new();
        let mut class_scalars: Vec<ScalarSummary> = Vec::new();
        let mut class_active: Vec<f64> = Vec::new();
        let mut fleet_busy: Vec<f64> = Vec::new();
        let mut fleet_energy: Vec<f64> = Vec::new();
        let mut group_busy: Vec<Vec<f64>> = vec![Vec::new(); n_groups];
        let mut group_energy: Vec<Vec<f64>> = vec![Vec::new(); n_groups];
        let mut bucket_width = 0.0;
        // Telemetry accumulators, folded in the same fixed slot order
        // as everything else in this loop.
        let mut merged_events: Vec<TraceEvent> = Vec::new();
        let mut jobs_total: u64 = 0;
        let mut class_counts: Vec<u64> = Vec::new();
        let mut cache_hits: u64 = 0;
        let mut cache_misses: u64 = 0;
        let mut wake_transitions: u64 = 0;
        let mut wakes_without_sleep_total: u64 = 0;
        for (i, slot) in slots.into_iter().enumerate() {
            self.last_warm.merge(slot.strategy.warm_start_stats());
            fleet_scalar.merge(&slot.responses);
            for (c, s) in slot.class_stats.iter().enumerate() {
                if c >= class_scalars.len() {
                    class_scalars.resize_with(c + 1, ScalarSummary::new);
                }
                class_scalars[c].merge(s);
            }
            let jobs_done = slot.all_jobs;
            let mean_response =
                if jobs_done == 0 { 0.0 } else { slot.response_sum / jobs_done as f64 };
            let (ledger, _residency, wakes_from, wakes_without_sleep, mut slot_events) =
                slot.sim.finish_traced(horizon);
            if trace_on {
                merged_events.append(&mut slot_events);
            }
            if metrics_on {
                jobs_total += jobs_done as u64;
                for (c, s) in slot.class_stats.iter().enumerate() {
                    if c >= class_counts.len() {
                        class_counts.resize(c + 1, 0);
                    }
                    class_counts[c] += s.count();
                }
                cache_hits += slot.cache_hits;
                cache_misses += slot.cache_misses;
                wake_transitions += wakes_from.iter().map(|&(_, count)| count).sum::<u64>();
                wakes_without_sleep_total += wakes_without_sleep;
            }
            bucket_width = ledger.bucket_width();
            for (c, &e) in ledger.active_energy_by_class().iter().enumerate() {
                if c >= class_active.len() {
                    class_active.resize(c + 1, 0.0);
                }
                class_active[c] += e;
            }
            let buckets = ledger.bucket_count();
            if fleet_busy.len() < buckets {
                fleet_busy.resize(buckets, 0.0);
                fleet_energy.resize(buckets, 0.0);
            }
            let (g_busy, g_energy) = (&mut group_busy[slot.group], &mut group_energy[slot.group]);
            if g_busy.len() < buckets {
                g_busy.resize(buckets, 0.0);
                g_energy.resize(buckets, 0.0);
            }
            for b in 0..buckets {
                let busy = ledger.bucket_busy_seconds(b);
                let energy = ledger.bucket_energy(b).as_joules();
                fleet_busy[b] += busy;
                fleet_energy[b] += energy;
                g_busy[b] += busy;
                g_energy[b] += energy;
            }
            summaries.push(ServerSummary {
                index: i,
                group: slot.group,
                jobs: jobs_done,
                mean_response,
                avg_power: ledger.total_energy().as_joules() / horizon,
                energy_joules: ledger.total_energy().as_joules(),
                active_energy_joules: ledger.active_energy().as_joules(),
                ep: ep::analyze(&ledger.power_samples()),
            });
        }
        // Merged utilization→power samples: utilization is busy time
        // over pooled capacity (k servers × bucket width), power the
        // pooled bucket energy over the bucket width.
        let to_samples = |busy: &[f64], energy: &[f64], servers: usize| -> Vec<PowerSample> {
            let capacity = servers.max(1) as f64 * bucket_width;
            busy.iter()
                .zip(energy)
                .map(|(&b, &e)| PowerSample {
                    utilization: (b / capacity).clamp(0.0, 1.0),
                    watts: e / bucket_width,
                })
                .collect()
        };
        let fleet_samples = to_samples(&fleet_busy, &fleet_energy, n);
        let group_samples: Vec<Vec<PowerSample>> = self
            .config
            .groups()
            .iter()
            .enumerate()
            .map(|(g, spec)| to_samples(&group_busy[g], &group_energy[g], spec.count))
            .collect();
        // Reassemble the streaming summaries from their two halves:
        // slot-order scalar folds (above) + shard-order sketch merges.
        // Central runs carry one sketch set; sharded runs merge the
        // per-shard sketches, which is exact (u64 bucket adds), so the
        // result equals the single-stream sketch byte-for-byte.
        let (fleet_sketch, mut class_sketches) = match state {
            DispatchState::Central { sketch, class_sketches, .. } => (sketch, class_sketches),
            DispatchState::Sharded { states, .. } => {
                let mut sketch = QuantileSketch::new();
                let mut class_sketches: Vec<QuantileSketch> = Vec::new();
                for shard in &states {
                    sketch.merge(&shard.sketch);
                    for (c, s) in shard.class_sketches.iter().enumerate() {
                        if c >= class_sketches.len() {
                            class_sketches.resize_with(c + 1, QuantileSketch::new);
                        }
                        class_sketches[c].merge(s);
                    }
                }
                (sketch, class_sketches)
            }
        };
        let fleet_responses = StreamingSummary::from_parts(fleet_scalar, fleet_sketch);
        class_sketches.resize_with(class_scalars.len(), QuantileSketch::new);
        let class_responses: Vec<StreamingSummary> = class_scalars
            .into_iter()
            .zip(class_sketches)
            .map(|(scalar, sketch)| StreamingSummary::from_parts(scalar, sketch))
            .collect();
        if trace_on || metrics_on {
            let mut registry = MetricsRegistry::new();
            if metrics_on {
                registry.add(metrics::JOBS_TOTAL, jobs_total);
                for (c, &count) in class_counts.iter().enumerate() {
                    registry.add(&metrics::jobs_class(c as u16), count);
                }
                registry.add(metrics::DISPATCH_SPILLS, spill_count);
                registry.add(metrics::DISPATCH_FALLBACKS, fallback_count);
                registry.add(metrics::CACHE_HITS, cache_hits);
                registry.add(metrics::CACHE_MISSES, cache_misses);
                registry.add(metrics::WAKE_TRANSITIONS, wake_transitions);
                registry.add(metrics::WAKES_WITHOUT_SLEEP, wakes_without_sleep_total);
                registry.add(metrics::AUTOSCALER_PARKS, park_count);
                registry.add(metrics::AUTOSCALER_WAKES, scale_wake_count);
            }
            merged_events.extend(fleet_events);
            self.last_telemetry =
                Some(TelemetryReport { events: merged_events, metrics: registry });
        }
        let group_names = self.config.groups().iter().map(|g| g.name.clone()).collect();
        let report = ClusterReport::new(
            dispatcher_name,
            group_names,
            summaries,
            fleet_responses,
            class_responses,
            horizon,
            self.config.runtime_for(0).mean_service(),
        )
        .with_energy_split(class_active, fleet_samples, group_samples);
        Ok(Some(match &controller {
            Some(ctrl) => report
                .with_autoscale(ctrl.parked_server_seconds(), ctrl.fleet_size_trace().to_vec()),
            None => report,
        }))
    }
}

/// Maps an autoscaler plan reason onto the telemetry event vocabulary.
/// Applied transitions always carry a reason (an in-band hold never
/// transitions); `None` only appears on holds, so the fallback arm is
/// unreachable from the emit sites.
fn scale_cause(reason: Option<ScaleReason>) -> ScaleCause {
    match reason {
        Some(ScaleReason::LowUtilization { utilization }) => {
            ScaleCause::LowUtilization { utilization }
        }
        Some(ScaleReason::HighUtilization { utilization }) => {
            ScaleCause::HighUtilization { utilization }
        }
        Some(ScaleReason::QosPressure) | None => ScaleCause::QosPressure,
    }
}

/// Rebuilds the engine's active-set vectors from the controller's
/// per-group active-prefix lengths: the sorted active slot list and, per
/// group, its `(start, active_count)` prefix.
fn rebuild_active(
    active: &[usize],
    group_starts: &[usize],
    active_slots: &mut Vec<usize>,
    active_groups: &mut Vec<(usize, usize)>,
) {
    active_slots.clear();
    active_groups.clear();
    for (g, &m) in active.iter().enumerate() {
        active_groups.push((group_starts[g], m));
        active_slots.extend(group_starts[g]..group_starts[g] + m);
    }
}

/// How [`Cluster::run_inner`] routes arrivals onto servers.
enum Routing<'a> {
    /// One sequential dispatch loop driven by a stateful [`Dispatcher`]
    /// that may read the live fleet backlog.
    Central(&'a mut dyn Dispatcher),
    /// Pre-split seeded-hash routing over contiguous server shards that
    /// dispatch concurrently.
    Sharded { split: StreamSplit, shards: usize },
}

/// The per-run dispatch state behind [`Routing`]: the central loop's
/// cursor/index/sketches, or the sharded loop's pre-split arrival
/// orders and per-shard states.
enum DispatchState<'a, 'j> {
    Central {
        dispatcher: &'a mut dyn Dispatcher,
        cursor: JobCursor<'j>,
        index: DispatchIndex,
        sketch: QuantileSketch,
        class_sketches: Vec<QuantileSketch>,
    },
    Sharded {
        split: StreamSplit,
        chunk: usize,
        cursor: JobCursor<'j>,
        orders: Vec<Vec<Job>>,
        scratch: Vec<Vec<Job>>,
        states: Vec<ShardState>,
    },
}

/// Dispatches one arrival onto its target server and folds the
/// response into the slot's scalar statistics and the caller's
/// quantile sketches. The central and sharded loops share this one
/// implementation verbatim — identical per-job float-op order on
/// identical per-server arrival subsequences is what pins the two
/// engines' reports to the same bytes.
fn dispatch_one(
    slot: &mut ServerSlot,
    job: &Job,
    epoch_end: f64,
    tagged: bool,
    sketch: &mut QuantileSketch,
    class_sketches: &mut Vec<QuantileSketch>,
) {
    let policy = slot.policy.as_ref().expect("policy set at epoch start");
    let mut routed: Option<JobRecord> = None;
    slot.sim.run_epoch_with(std::slice::from_ref(job), policy, epoch_end, |r| {
        routed = Some(*r);
    });
    let record = routed.expect("one arrival produces one record");
    let response = record.response();
    slot.responses.push(response);
    sketch.push(response);
    if tagged {
        let c = job.class().as_index();
        if c >= slot.class_stats.len() {
            slot.class_stats.resize_with(c + 1, ScalarSummary::new);
        }
        slot.class_stats[c].push(response);
        if c >= class_sketches.len() {
            class_sketches.resize_with(c + 1, QuantileSketch::new);
        }
        class_sketches[c].push(response);
    }
    slot.response_sum += response;
    slot.all_jobs += 1;
    slot.epoch_work += record.size;
    if slot.wants_records {
        slot.epoch_records.push(record);
    }
}

/// One shard's dispatch loop for one epoch: walk the shard's pre-split
/// arrival order up to the epoch boundary, routing each job to the
/// server its sequence number hashes to (shifted into shard-local
/// coordinates). Routing is a pure hash, so the loop maintains no
/// backlog index. No cross-shard reads or writes anywhere in the loop.
fn run_shard_epoch(
    slots: &mut [ServerSlot],
    shard: &mut ShardState,
    order: &[Job],
    shard_start: usize,
    ctx: EpochCtx,
) {
    while shard.pos < order.len() {
        let job = &order[shard.pos];
        if job.arrival >= ctx.epoch_end {
            break;
        }
        shard.pos += 1;
        let target = ctx.split.lane(job.sequence(), ctx.n_servers) - shard_start;
        let slot = &mut slots[target];
        dispatch_one(
            slot,
            job,
            ctx.epoch_end,
            ctx.tagged,
            &mut shard.sketch,
            &mut shard.class_sketches,
        );
    }
}

/// Runs `f` over every slot, fanning out across scoped worker threads
/// when there is enough work — the `sweep::evaluate_policies` chunking
/// pattern: disjoint `&mut` chunks, no locks, and a result that is
/// independent of the worker count because every slot is touched
/// exactly once by whoever owns its chunk.
fn par_each(
    mut slots: Vec<&mut ServerSlot>,
    threads: usize,
    f: &(impl Fn(&mut ServerSlot) -> Result<(), CoreError> + Sync),
) -> Result<(), CoreError> {
    if threads <= 1 || slots.len() <= 1 {
        for slot in slots {
            f(slot)?;
        }
        return Ok(());
    }
    let chunk_len = slots.len().div_ceil(threads.min(slots.len()));
    let mut outcomes: Vec<Result<(), CoreError>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = slots
            .chunks_mut(chunk_len)
            .map(|chunk| {
                scope.spawn(move || {
                    for slot in chunk.iter_mut() {
                        f(slot)?;
                    }
                    Ok(())
                })
            })
            .collect();
        outcomes.extend(handles.into_iter().map(|h| h.join().expect("cluster worker panicked")));
    });
    outcomes.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{JoinShortestBacklog, PackFirstFit, RandomUniform, RoundRobin};
    use rand::SeedableRng;
    use sleepscale::CandidateSet;
    use sleepscale_sim::Job;
    use sleepscale_workloads::{
        replay_trace, traces, ReplayConfig, WorkloadDistributions, WorkloadSpec,
    };

    fn runtime(eval_jobs: usize) -> RuntimeConfig {
        RuntimeConfig::builder(WorkloadSpec::dns().service_mean())
            .qos(QosConstraint::mean_response(0.8).unwrap())
            .epoch_minutes(5)
            .eval_jobs(eval_jobs)
            .build()
            .unwrap()
    }

    fn setup(n: usize, minutes: usize, seed: u64) -> (ClusterConfig, UtilizationTrace, JobStream) {
        let spec = WorkloadSpec::dns();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
        let trace = traces::email_store(1, 7).window(600, 600 + minutes);
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n), &mut rng).unwrap();
        (ClusterConfig::homogeneous(n, runtime(300)).unwrap(), trace, jobs)
    }

    fn run_with(
        dispatcher: &mut dyn Dispatcher,
        config: &ClusterConfig,
        trace: &UtilizationTrace,
        jobs: &JobStream,
    ) -> ClusterReport {
        let mut cluster = Cluster::new(config.clone());
        cluster.run(trace, jobs, dispatcher).unwrap()
    }

    #[test]
    fn fleet_completes_every_job_and_sums_energy() {
        let (config, trace, jobs) = setup(4, 60, 41);
        let report = run_with(&mut RoundRobin::new(), &config, &trace, &jobs);
        assert_eq!(report.total_jobs(), jobs.len());
        assert_eq!(report.n_servers(), 4);
        let per_server: f64 = report.servers().iter().map(|s| s.energy_joules).sum();
        assert!((per_server - report.total_energy_joules()).abs() < 1e-6);
        // Fleet power within physical bounds.
        assert!(report.total_power_watts() > 4.0 * 28.0);
        assert!(report.total_power_watts() < 4.0 * 250.0);
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let (config, trace, jobs) = setup(4, 60, 42);
        let report = run_with(&mut RoundRobin::new(), &config, &trace, &jobs);
        assert!(report.load_balance_index() > 0.99, "{}", report.load_balance_index());
    }

    fn setup_constant(
        n: usize,
        rho_cluster: f64,
        minutes: usize,
        seed: u64,
    ) -> (ClusterConfig, UtilizationTrace, JobStream) {
        let spec = WorkloadSpec::dns();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
        let trace = UtilizationTrace::constant(rho_cluster, minutes).unwrap();
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n), &mut rng).unwrap();
        (ClusterConfig::homogeneous(n, runtime(400)).unwrap(), trace, jobs)
    }

    /// Consolidation pays where the paper's introduction says it does:
    /// at the 15–30% utilizations data centers actually run at, where
    /// idle power dominates. (At high utilization packing *loses* — it
    /// forces high clocks whose cubic busy power outweighs the idle
    /// savings.)
    #[test]
    fn packing_concentrates_load_and_saves_power_at_low_utilization() {
        let (config, trace, jobs) = setup_constant(4, 0.15, 60, 43);
        let spread = run_with(&mut JoinShortestBacklog::new(), &config, &trace, &jobs);
        // Pack up to ~1 s of backlog (≈ the response budget) per server.
        let packed = run_with(&mut PackFirstFit::new(1.0), &config, &trace, &jobs);
        assert!(
            packed.load_balance_index() < spread.load_balance_index(),
            "packing {} vs spreading {}",
            packed.load_balance_index(),
            spread.load_balance_index()
        );
        assert!(
            packed.total_power_watts() < spread.total_power_watts() - 10.0,
            "packing {:.0} W should beat spreading {:.0} W at low load",
            packed.total_power_watts(),
            spread.total_power_watts()
        );
    }

    /// At high load, queueing dominates and backlog-aware routing is
    /// structurally better than blind random routing.
    #[test]
    fn shortest_backlog_beats_random_on_response_at_high_load() {
        let (config, trace, jobs) = setup_constant(4, 0.75, 60, 44);
        let jsb = run_with(&mut JoinShortestBacklog::new(), &config, &trace, &jobs);
        let random = run_with(&mut RandomUniform::new(9), &config, &trace, &jobs);
        assert!(
            jsb.mean_response_seconds() <= random.mean_response_seconds(),
            "JSB {} vs random {}",
            jsb.mean_response_seconds(),
            random.mean_response_seconds()
        );
    }

    /// Homogeneous servers under balanced dispatch share one
    /// characterization per epoch: the fleet cache must absorb most of
    /// the per-server selections.
    #[test]
    fn homogeneous_fleet_shares_characterizations() {
        // Long enough that predictor warm-up (where per-server
        // predictions straddle ρ buckets) stops dominating.
        let (config, trace, jobs) = setup_constant(4, 0.3, 180, 46);
        let mut cluster = Cluster::new(config);
        cluster.run(&trace, &jobs, &mut RoundRobin::new()).unwrap();
        let stats = cluster.characterization_stats();
        assert!(
            stats.hits > stats.misses,
            "balanced homogeneous fleet should mostly hit the shared cache: {stats:?}"
        );
        // 4 servers × 36 epochs ≈ 140 selections after cold start;
        // sharing must eliminate well over half the sweeps.
        assert!(stats.hits >= 80, "{stats:?}");
    }

    #[test]
    fn single_server_cluster_matches_core_runtime_shape() {
        let (config, trace, jobs) = setup(1, 30, 45);
        let report = run_with(&mut RoundRobin::new(), &config, &trace, &jobs);
        assert_eq!(report.n_servers(), 1);
        assert_eq!(report.total_jobs(), jobs.len());
        assert!(report.normalized_mean_response() < 10.0);
    }

    #[test]
    fn fleet_replay_densifies_without_time_compression() {
        // ReplayConfig::for_fleet(n) must multiply the arrival *rate*
        // while arrivals still span the whole trace window.
        let spec = WorkloadSpec::dns();
        let mut rng = rand::rngs::StdRng::seed_from_u64(50);
        let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
        let trace = UtilizationTrace::constant(0.4, 30).unwrap();
        let single = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
        let fleet = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(4), &mut rng).unwrap();
        let ratio = fleet.len() as f64 / single.len() as f64;
        assert!((ratio - 4.0).abs() < 0.4, "rate ratio {ratio}");
        // Timeline preserved: the last arrival still lands near the end.
        assert!(fleet.last_arrival() > 0.9 * 30.0 * 60.0);
    }

    /// Satellite regression: a cluster survives (and reproduces) a
    /// second run — the fleet is rebuilt per run instead of drained.
    #[test]
    fn back_to_back_runs_on_one_cluster_are_identical() {
        let (config, trace, jobs) = setup(3, 45, 47);
        let mut cluster = Cluster::new(config);
        let first = cluster.run(&trace, &jobs, &mut RoundRobin::new()).unwrap();
        // Second run: fresh servers, warm shared cache. The cached
        // selections equal what fresh characterizations would compute
        // (same logs, same keys), so the report is byte-identical.
        let second = cluster.run(&trace, &jobs, &mut RoundRobin::new()).unwrap();
        assert_eq!(first, second);
        assert_eq!(first.total_jobs(), jobs.len());
    }

    /// Satellite regression: an out-of-range route is surfaced as an
    /// error, not clamped onto the last server.
    #[test]
    fn out_of_range_route_is_a_dispatcher_bug() {
        #[derive(Debug)]
        struct Broken;
        impl Dispatcher for Broken {
            fn name(&self) -> String {
                "broken".into()
            }
            fn route(&mut self, _job: &Job, index: &DispatchIndex) -> usize {
                index.n_servers() + 3
            }
        }
        let (config, trace, jobs) = setup(2, 10, 48);
        let mut cluster = Cluster::new(config);
        let err = cluster.run(&trace, &jobs, &mut Broken).unwrap_err();
        assert!(err.to_string().contains("routed job"), "{err}");
        // The cluster is still usable after the failed run.
        assert!(cluster.run(&trace, &jobs, &mut RoundRobin::new()).is_ok());
    }

    /// Class tags flow through the fleet: a multi-class stream yields
    /// per-class response slices that partition the fleet total, while
    /// untagged (and single-class tagged) streams keep the slices
    /// empty — and tagging jobs with the default class changes nothing.
    #[test]
    fn class_slices_partition_fleet_responses() {
        use sleepscale_sim::{pack_id, ClassId};
        let (config, trace, jobs) = setup(3, 45, 54);
        let untagged = run_with(&mut RoundRobin::new(), &config, &trace, &jobs);
        assert!(untagged.class_responses().is_empty(), "untagged fleets report no slices");

        // Re-tag the same stream: alternate jobs class 1 / class 2.
        let tagged_jobs: Vec<Job> = jobs
            .jobs()
            .iter()
            .enumerate()
            .map(|(i, j)| Job { id: pack_id(j.id, ClassId(1 + (i % 2) as u16)), ..*j })
            .collect();
        let tagged_stream = JobStream::new(tagged_jobs).unwrap();
        let tagged = run_with(&mut RoundRobin::new(), &config, &trace, &tagged_stream);
        let slices = tagged.class_responses();
        assert_eq!(slices.len(), 3, "slices indexed by class id, 0 empty");
        assert_eq!(slices[0].count(), 0);
        assert_eq!(
            slices.iter().map(|s| s.count()).sum::<u64>(),
            tagged.responses().count(),
            "class slices partition the fleet responses"
        );
        // The tag is invisible to the simulation itself: aggregate
        // statistics equal the untagged run's.
        assert_eq!(tagged.responses(), untagged.responses());
        assert_eq!(tagged.total_energy_joules(), untagged.total_energy_joules());
        // Energy attribution is exact: tags only split the active
        // energy, whose total (and the fleet's idle remainder and
        // utilization→power samples) matches the untagged bytes.
        assert_eq!(tagged.active_energy_joules(), untagged.active_energy_joules());
        assert_eq!(tagged.power_samples(), untagged.power_samples());
        assert_eq!(untagged.class_active_energy().len(), 1, "untagged: all active under tag 0");
        let energy_slices = tagged.class_active_energy();
        assert_eq!(energy_slices.len(), 3);
        assert_eq!(energy_slices[0], 0.0, "no class-0 jobs, no class-0 energy");
        assert!(energy_slices[1] > 0.0 && energy_slices[2] > 0.0);
        let rebuilt: f64 = energy_slices.iter().sum();
        assert!((rebuilt - tagged.active_energy_joules()).abs() < 1e-6);
        assert!(
            (tagged.active_energy_joules() + tagged.idle_energy_joules()
                - tagged.total_energy_joules())
            .abs()
                < 1e-6
        );
    }

    /// The parallel epoch phases are thread-count invariant: pinning 1,
    /// 2, or 5 workers produces byte-identical reports.
    #[test]
    fn fleet_results_are_thread_count_invariant() {
        let (config, trace, jobs) = setup(4, 45, 49);
        let run_pinned = |threads: usize| {
            let mut cluster = Cluster::new(config.clone()).with_threads(threads);
            cluster.run(&trace, &jobs, &mut JoinShortestBacklog::new()).unwrap()
        };
        let reference = run_pinned(1);
        for threads in [2, 5] {
            assert_eq!(run_pinned(threads), reference, "threads={threads} diverged");
        }
    }

    /// Warm-start telemetry flows up from the managers.
    #[test]
    fn warm_start_stats_aggregate_over_the_fleet() {
        let (config, trace, jobs) = setup_constant(2, 0.25, 90, 51);
        let mut cluster = Cluster::new(config);
        cluster.run(&trace, &jobs, &mut RoundRobin::new()).unwrap();
        let warm = cluster.warm_start_stats();
        assert!(warm.searches > 0, "{warm:?}");
        assert!(warm.warm > 0, "cross-epoch warm start should fire on repeat misses: {warm:?}");
    }

    /// Empty fleets and zero-count groups are configuration errors, not
    /// panics or silent clamps.
    #[test]
    fn empty_fleets_and_zero_count_groups_are_rejected() {
        let base = runtime(300);
        let err = ClusterConfig::new(&base, vec![]).unwrap_err();
        assert!(err.to_string().contains("at least one server group"), "{err}");
        let err = ClusterConfig::new(
            &base,
            vec![ServerGroup::new("ghost", 0, StrategySpec::sleepscale())],
        )
        .unwrap_err();
        assert!(err.to_string().contains("zero servers"), "{err}");
        assert!(ClusterConfig::homogeneous(0, base).is_err());
    }

    /// A heterogeneous fleet: a Xeon group under SleepScale next to an
    /// Atom-class group racing to halt. Both groups serve their share,
    /// summaries attribute servers to groups, and the racing group
    /// never characterizes (its cache stays empty).
    #[test]
    fn heterogeneous_groups_run_side_by_side() {
        let spec = WorkloadSpec::dns();
        let base = runtime(300);
        let n = 4;
        let mut rng = rand::rngs::StdRng::seed_from_u64(52);
        let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
        let trace = UtilizationTrace::constant(0.25, 60).unwrap();
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n), &mut rng).unwrap();
        let groups = vec![
            ServerGroup::new("sleepscale", 2, StrategySpec::sleepscale()),
            ServerGroup {
                env: SimEnv::new(
                    sleepscale_power::presets::atom(),
                    sleepscale_power::FrequencyScaling::CpuBound,
                ),
                ..ServerGroup::new("race", 2, StrategySpec::race_to_halt_c6())
            },
        ];
        let config = ClusterConfig::new(&base, groups).unwrap();
        let mut cluster = Cluster::new(config);
        let report = cluster.run(&trace, &jobs, &mut RoundRobin::new()).unwrap();
        assert_eq!(report.total_jobs(), jobs.len());
        assert_eq!(report.group_names(), ["sleepscale", "race"]);
        assert!(report.servers().iter().take(2).all(|s| s.group == 0));
        assert!(report.servers().iter().skip(2).all(|s| s.group == 1));
        let per_group = report.group_summaries();
        assert_eq!(per_group.len(), 2);
        assert_eq!(per_group.iter().map(|g| g.jobs).sum::<usize>(), jobs.len());
        assert!(per_group.iter().all(|g| g.servers == 2));
        let stats = cluster.group_characterization_stats();
        assert!(stats[0].1.hits + stats[0].1.misses > 0, "managed group characterizes");
        assert_eq!(stats[1].1.hits + stats[1].1.misses, 0, "R2H group never characterizes");
    }

    /// Per-group QoS: a group with a tight budget runs measurably
    /// faster clocks (and hotter) than one with a loose budget on the
    /// same machine class under the same balanced load.
    #[test]
    fn per_group_qos_splits_the_fleet_operating_point() {
        let spec = WorkloadSpec::dns();
        let base = runtime(300);
        let n = 4;
        let mut rng = rand::rngs::StdRng::seed_from_u64(53);
        let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
        let trace = UtilizationTrace::constant(0.3, 120).unwrap();
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n), &mut rng).unwrap();
        let groups = vec![
            ServerGroup {
                qos: QosConstraint::mean_response(0.5).unwrap(), // budget 2.0
                ..ServerGroup::new("tight", 2, StrategySpec::sleepscale())
            },
            ServerGroup {
                qos: QosConstraint::mean_response(0.9).unwrap(), // budget 10.0
                ..ServerGroup::new("loose", 2, StrategySpec::sleepscale())
            },
        ];
        let config = ClusterConfig::new(&base, groups).unwrap();
        let mut cluster = Cluster::new(config);
        let report = cluster.run(&trace, &jobs, &mut RoundRobin::new()).unwrap();
        let per_group = report.group_summaries();
        assert!(
            per_group[0].mean_response < per_group[1].mean_response,
            "tight QoS must respond faster: {} vs {}",
            per_group[0].mean_response,
            per_group[1].mean_response
        );
        assert!(
            per_group[0].avg_power > per_group[1].avg_power,
            "tight QoS pays in power: {} W vs {} W",
            per_group[0].avg_power,
            per_group[1].avg_power
        );
    }

    /// The tentpole invariant: a sharded run is byte-identical to the
    /// central engine with a [`SplitUniform`] dispatcher over the same
    /// seed, for every shard count — including shard counts that don't
    /// divide the fleet.
    #[test]
    fn sharded_run_matches_central_split_uniform_for_every_shard_count() {
        let (config, trace, jobs) = setup(6, 45, 55);
        let reference = run_with(&mut crate::SplitUniform::new(11), &config, &trace, &jobs);
        assert_eq!(reference.dispatcher(), "split-uniform(11)");
        for shards in [1usize, 2, 4, 5, 6, 7, 100] {
            let mut cluster = Cluster::new(config.clone());
            let sharded = cluster.run_sharded(&trace, &jobs, StreamSplit::new(11), shards).unwrap();
            assert_eq!(sharded, reference, "shards={shards} diverged");
        }
    }

    /// Shard count × worker count cannot interact: pinning different
    /// thread counts over different shard counts always reproduces the
    /// single-shard single-thread bytes.
    #[test]
    fn sharded_runs_are_worker_count_invariant() {
        let (config, trace, jobs) = setup(5, 30, 56);
        let run_pinned = |shards: usize, threads: usize| {
            let mut cluster = Cluster::new(config.clone()).with_threads(threads);
            cluster.run_sharded(&trace, &jobs, StreamSplit::new(3), shards).unwrap()
        };
        let reference = run_pinned(1, 1);
        for shards in [2usize, 3, 5] {
            for threads in [1usize, 2, 5] {
                assert_eq!(
                    run_pinned(shards, threads),
                    reference,
                    "shards={shards} threads={threads} diverged"
                );
            }
        }
    }

    /// Class tags survive sharding: a tagged stream's per-class slices
    /// and energy attribution are shard-count invariant too (tags ride
    /// the id's high bits, the split hashes the sequence number).
    #[test]
    fn sharded_class_slices_match_central() {
        use sleepscale_sim::{pack_id, ClassId};
        let (config, trace, jobs) = setup(4, 30, 57);
        let tagged_jobs: Vec<Job> = jobs
            .jobs()
            .iter()
            .enumerate()
            .map(|(i, j)| Job { id: pack_id(j.id, ClassId(1 + (i % 3) as u16)), ..*j })
            .collect();
        let tagged = JobStream::new(tagged_jobs).unwrap();
        let reference = run_with(&mut crate::SplitUniform::new(5), &config, &trace, &tagged);
        assert_eq!(reference.class_responses().len(), 4);
        for shards in [2usize, 3, 4] {
            let mut cluster = Cluster::new(config.clone());
            let sharded =
                cluster.run_sharded(&trace, &tagged, StreamSplit::new(5), shards).unwrap();
            assert_eq!(sharded, reference, "shards={shards} diverged on a tagged stream");
        }
    }

    /// A plain (non-managed) strategy opts out of the per-epoch record
    /// buffer; the sharded engine must agree with the central one there
    /// too — this is the mega-fleet configuration.
    #[test]
    fn sharded_race_to_halt_skips_records_and_matches_central() {
        let spec = WorkloadSpec::dns();
        let base = runtime(300);
        let n = 4;
        let mut rng = rand::rngs::StdRng::seed_from_u64(58);
        let dists = WorkloadDistributions::empirical(&spec, 4_000, &mut rng).unwrap();
        let trace = UtilizationTrace::constant(0.2, 30).unwrap();
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::for_fleet(n), &mut rng).unwrap();
        let groups = vec![ServerGroup::new("race", n, StrategySpec::race_to_halt_c6())];
        let config = ClusterConfig::new(&base, groups).unwrap();
        let reference = run_with(&mut crate::SplitUniform::new(2), &config, &trace, &jobs);
        for shards in [1usize, 3] {
            let mut cluster = Cluster::new(config.clone());
            let sharded = cluster.run_sharded(&trace, &jobs, StreamSplit::new(2), shards).unwrap();
            assert_eq!(sharded, reference, "shards={shards} diverged under race-to-halt");
        }
    }

    /// Oversized job streams are rejected up front, not truncated: the
    /// sharded pre-split stores u32 indices.
    #[test]
    fn sharded_shard_counts_clamp_and_zero_is_one() {
        let (config, trace, jobs) = setup(3, 10, 59);
        let mut cluster = Cluster::new(config);
        let a = cluster.run_sharded(&trace, &jobs, StreamSplit::new(1), 0).unwrap();
        let b = cluster.run_sharded(&trace, &jobs, StreamSplit::new(1), 1).unwrap();
        assert_eq!(a, b, "shards=0 clamps to 1");
    }

    /// Kill-at-every-epoch × resume is byte-identical to the
    /// uninterrupted fleet run, under central routing with a stateful
    /// dispatcher (the round-robin pointer must survive the snapshot).
    #[test]
    fn central_kill_and_resume_reproduces_uninterrupted_run() {
        let (config, trace, jobs) = setup(3, 30, 60);
        let mut reference_cluster = Cluster::new(config.clone());
        let reference = reference_cluster.run(&trace, &jobs, &mut RoundRobin::new()).unwrap();
        let n_epochs = 6; // 30 min / 5 min
        for kill_at in 0..n_epochs - 1 {
            let mut snapshot: Option<Vec<u8>> = None;
            let mut sink = |epoch: usize, bytes: &[u8]| {
                if epoch == kill_at {
                    snapshot = Some(bytes.to_vec());
                    Ok(false)
                } else {
                    Ok(true)
                }
            };
            let mut cluster = Cluster::new(config.clone());
            let killed = cluster
                .run_checkpointed(&trace, &jobs, &mut RoundRobin::new(), None, Some(&mut sink))
                .unwrap();
            assert!(killed.is_none());
            let snapshot = snapshot.unwrap();
            let mut resumed_cluster = Cluster::new(config.clone());
            let resumed = resumed_cluster
                .run_checkpointed(&trace, &jobs, &mut RoundRobin::new(), Some(&snapshot), None)
                .unwrap()
                .unwrap();
            assert_eq!(resumed, reference, "kill at {kill_at} diverged");
        }
    }

    /// Sharded kill/resume: thread counts may differ between the killed
    /// run and the resume, and the result still matches the
    /// uninterrupted bytes (positions are fast-forwarded canonically,
    /// not replayed from whichever walk the killed run used).
    #[test]
    fn sharded_kill_and_resume_is_thread_count_agnostic() {
        let (config, trace, jobs) = setup(5, 30, 61);
        let mut reference_cluster = Cluster::new(config.clone());
        let reference =
            reference_cluster.run_sharded(&trace, &jobs, StreamSplit::new(11), 2).unwrap();
        for (kill_threads, resume_threads) in [(1usize, 4usize), (4, 1)] {
            let kill_at = 2;
            let mut snapshot: Option<Vec<u8>> = None;
            let mut sink = |epoch: usize, bytes: &[u8]| {
                if epoch == kill_at {
                    snapshot = Some(bytes.to_vec());
                    Ok(false)
                } else {
                    Ok(true)
                }
            };
            let mut cluster = Cluster::new(config.clone()).with_threads(kill_threads);
            cluster
                .run_sharded_checkpointed(
                    &trace,
                    &jobs,
                    StreamSplit::new(11),
                    2,
                    None,
                    Some(&mut sink),
                )
                .unwrap();
            let snapshot = snapshot.unwrap();
            let mut resumed_cluster = Cluster::new(config.clone()).with_threads(resume_threads);
            let resumed = resumed_cluster
                .run_sharded_checkpointed(
                    &trace,
                    &jobs,
                    StreamSplit::new(11),
                    2,
                    Some(&snapshot),
                    None,
                )
                .unwrap()
                .unwrap();
            assert_eq!(
                resumed, reference,
                "kill under {kill_threads} threads, resume under {resume_threads} diverged"
            );
            // A shard-count mismatch on resume is a typed error.
            let mut wrong = Cluster::new(config.clone());
            let err = wrong
                .run_sharded_checkpointed(
                    &trace,
                    &jobs,
                    StreamSplit::new(11),
                    3,
                    Some(&snapshot),
                    None,
                )
                .unwrap_err();
            assert!(err.to_string().contains("shards"), "{err}");
        }
    }

    /// Off-peak, the autoscaler parks real capacity and the report
    /// carries the evidence: positive parked server-seconds, a fleet
    /// trace that dips below the configured size, every job still
    /// served, and strictly less total energy than the identical
    /// fixed fleet.
    #[test]
    fn autoscaler_parks_off_peak_and_saves_energy() {
        let (config, trace, jobs) = setup_constant(6, 0.10, 60, 62);
        let fixed = run_with(&mut JoinShortestBacklog::new(), &config, &trace, &jobs);
        let mut cluster = Cluster::new(config.clone())
            .with_autoscaler(sleepscale_autoscale::AutoscalerSpec::new());
        let scaled = cluster.run(&trace, &jobs, &mut JoinShortestBacklog::new()).unwrap();
        assert_eq!(scaled.total_jobs(), jobs.len(), "autoscaling must not drop jobs");
        assert!(scaled.parked_server_seconds() > 0.0, "a 10% fleet should park");
        assert_eq!(scaled.fleet_size_trace().len(), 12, "one entry per epoch");
        assert_eq!(scaled.fleet_size_trace()[0], 6, "the fleet boots fully active");
        assert!(scaled.fleet_size_trace().iter().any(|&m| m < 6), "the trace should dip");
        assert!(
            scaled.total_energy_joules() < fixed.total_energy_joules(),
            "parked capacity must save energy: {} vs {}",
            scaled.total_energy_joules(),
            fixed.total_energy_joules()
        );
        assert_eq!(fixed.parked_server_seconds(), 0.0);
        assert!(fixed.fleet_size_trace().is_empty());
    }

    /// Autoscaled runs keep the engine's byte-determinism: worker
    /// thread counts cannot leak into the report, under central and
    /// sharded routing alike, and sharded runs stay shard-count
    /// invariant (the serial segment path draws each lane over the
    /// epoch's active set).
    #[test]
    fn autoscaled_runs_are_thread_and_shard_invariant() {
        let (config, trace, jobs) = setup_constant(5, 0.12, 30, 63);
        let spec = sleepscale_autoscale::AutoscalerSpec::new();
        let central = |threads: usize| {
            let mut cluster =
                Cluster::new(config.clone()).with_threads(threads).with_autoscaler(spec.clone());
            cluster.run(&trace, &jobs, &mut JoinShortestBacklog::new()).unwrap()
        };
        let reference = central(1);
        assert!(reference.parked_server_seconds() > 0.0, "the run should actually scale");
        for threads in [2usize, 5] {
            assert_eq!(central(threads), reference, "threads={threads} diverged");
        }
        let sharded = |shards: usize, threads: usize| {
            let mut cluster =
                Cluster::new(config.clone()).with_threads(threads).with_autoscaler(spec.clone());
            cluster.run_sharded(&trace, &jobs, StreamSplit::new(7), shards).unwrap()
        };
        let split_reference = sharded(1, 1);
        assert!(split_reference.parked_server_seconds() > 0.0);
        for (shards, threads) in [(2usize, 1usize), (3, 4), (5, 2)] {
            assert_eq!(
                sharded(shards, threads),
                split_reference,
                "shards={shards} threads={threads} diverged"
            );
        }
        // The central engine over a SplitUniform dispatcher still
        // matches the sharded engine when both are autoscaled.
        let mut cluster = Cluster::new(config.clone()).with_autoscaler(spec.clone());
        let central_split = cluster.run(&trace, &jobs, &mut crate::SplitUniform::new(7)).unwrap();
        assert_eq!(central_split, split_reference, "central split-uniform diverged");
    }

    /// Kill-at-every-epoch × resume reproduces the uninterrupted
    /// autoscaled run: the controller state (active prefixes, parked
    /// seconds, trace) rides the snapshot and parked slots stay
    /// routing-invisible after the index rebuild.
    #[test]
    fn autoscaled_kill_and_resume_reproduces_uninterrupted_run() {
        let (config, trace, jobs) = setup_constant(4, 0.12, 30, 64);
        let spec = sleepscale_autoscale::AutoscalerSpec::new();
        let mut reference_cluster = Cluster::new(config.clone()).with_autoscaler(spec.clone());
        let reference =
            reference_cluster.run(&trace, &jobs, &mut JoinShortestBacklog::new()).unwrap();
        assert!(reference.parked_server_seconds() > 0.0, "the run should actually scale");
        for kill_at in 0..5 {
            let mut snapshot: Option<Vec<u8>> = None;
            let mut sink = |epoch: usize, bytes: &[u8]| {
                if epoch == kill_at {
                    snapshot = Some(bytes.to_vec());
                    Ok(false)
                } else {
                    Ok(true)
                }
            };
            let mut cluster = Cluster::new(config.clone()).with_autoscaler(spec.clone());
            let killed = cluster
                .run_checkpointed(
                    &trace,
                    &jobs,
                    &mut JoinShortestBacklog::new(),
                    None,
                    Some(&mut sink),
                )
                .unwrap();
            assert!(killed.is_none());
            let snapshot = snapshot.unwrap();
            let mut resumed_cluster = Cluster::new(config.clone()).with_autoscaler(spec.clone());
            let resumed = resumed_cluster
                .run_checkpointed(
                    &trace,
                    &jobs,
                    &mut JoinShortestBacklog::new(),
                    Some(&snapshot),
                    None,
                )
                .unwrap()
                .unwrap();
            assert_eq!(resumed, reference, "kill at {kill_at} diverged");
        }
    }

    /// An autoscaler snapshot and a plain snapshot are mutually
    /// unreadable — resuming across the configuration mismatch fails
    /// loudly instead of misreading bytes.
    #[test]
    fn autoscaler_snapshot_configuration_mismatch_is_rejected() {
        let (config, trace, jobs) = setup_constant(3, 0.12, 15, 65);
        let spec = sleepscale_autoscale::AutoscalerSpec::new();
        let mut snapshot: Option<Vec<u8>> = None;
        let mut sink = |epoch: usize, bytes: &[u8]| {
            if epoch == 1 {
                snapshot = Some(bytes.to_vec());
                Ok(false)
            } else {
                Ok(true)
            }
        };
        Cluster::new(config.clone())
            .with_autoscaler(spec.clone())
            .run_checkpointed(&trace, &jobs, &mut JoinShortestBacklog::new(), None, Some(&mut sink))
            .unwrap();
        let snapshot = snapshot.unwrap();
        // Autoscaled snapshot into a plain cluster: trailing bytes.
        let err = Cluster::new(config.clone())
            .run_checkpointed(&trace, &jobs, &mut JoinShortestBacklog::new(), Some(&snapshot), None)
            .unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    /// The homogeneous constructor reproduces the default strategy
    /// wiring: one group, the runtime's own env/QoS/α, and a default
    /// SleepScale spec over the standard candidate set.
    #[test]
    fn homogeneous_config_is_one_default_group() {
        let base = runtime(300);
        let config = ClusterConfig::homogeneous(3, base.clone()).unwrap();
        assert_eq!(config.n_servers(), 3);
        assert_eq!(config.groups().len(), 1);
        let group = &config.groups()[0];
        assert_eq!(group.strategy, StrategySpec::sleepscale());
        assert_eq!(group.qos, base.qos());
        assert_eq!(config.runtime_for(0), &base);
        assert_eq!(CandidateSet::standard().name(), "SS");
    }
}
