use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sleepscale_sim::{Job, StreamSplit};

/// An incrementally maintained routing index over the fleet: each
/// server's `free_time` (the instant its committed work drains) in a
/// flat tournament tree, so dispatchers answer their queries in
/// O(log N) without rebuilding any per-job snapshot.
///
/// The engine updates exactly one entry per dispatched job (the routed
/// server's), so the index is the only cluster state a dispatcher
/// observes — deliberately queue-level, not power-level: front-end load
/// balancers see backlogs, not C-states. Backlog ordering at any
/// routing instant equals `free_time` ordering (`backlog =
/// max(free_time − now, 0)`), which is what lets shortest-backlog
/// routing ride a min-tree instead of a linear scan.
///
/// All queries break ties toward the *lowest server index*, matching a
/// first-minimum linear scan over per-server backlogs exactly (the
/// property suite pins this equivalence down).
#[derive(Debug, Clone)]
pub struct DispatchIndex {
    n: usize,
    /// Leaf count, `n` rounded up to a power of two; leaf `i` lives at
    /// `tree[size + i]`, padding leaves hold `+∞`.
    size: usize,
    /// 1-based binary min-tree over free times (`tree[0]` unused).
    tree: Vec<f64>,
}

impl DispatchIndex {
    /// An index for `n` servers (clamped to ≥ 1), all initially idle
    /// since t = 0.
    pub fn new(n: usize) -> DispatchIndex {
        let n = n.max(1);
        let size = n.next_power_of_two();
        let mut tree = vec![f64::INFINITY; 2 * size];
        for leaf in &mut tree[size..size + n] {
            *leaf = 0.0;
        }
        for k in (1..size).rev() {
            tree[k] = tree[2 * k].min(tree[2 * k + 1]);
        }
        DispatchIndex { n, size, tree }
    }

    /// Fleet size.
    pub fn n_servers(&self) -> usize {
        self.n
    }

    /// Server `i`'s committed-work completion instant.
    pub fn free_time(&self, i: usize) -> f64 {
        self.tree[self.size + i]
    }

    /// Every server's `free_time`, by server index (the raw leaf view —
    /// handy for linear-scan reference implementations and tests).
    pub fn free_times(&self) -> &[f64] {
        &self.tree[self.size..self.size + self.n]
    }

    /// Server `i`'s backlog at instant `now`, seconds (0 means idle,
    /// possibly asleep).
    pub fn backlog(&self, i: usize, now: f64) -> f64 {
        (self.free_time(i) - now).max(0.0)
    }

    /// Re-keys server `i` after work was committed to (or drained from)
    /// it — the engine's one O(log N) write per dispatched job.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `free_time` is not finite.
    pub fn update(&mut self, i: usize, free_time: f64) {
        assert!(i < self.n, "server {i} out of range for {} servers", self.n);
        assert!(free_time.is_finite(), "free_time must be finite, got {free_time}");
        let mut k = self.size + i;
        self.tree[k] = free_time;
        k /= 2;
        while k >= 1 {
            self.tree[k] = self.tree[2 * k].min(self.tree[2 * k + 1]);
            k /= 2;
        }
    }

    /// The lowest-indexed server whose `free_time` is minimal.
    pub fn min_free_server(&self) -> usize {
        let mut k = 1;
        while k < self.size {
            // `<=` prefers the left child on ties, which is the lower
            // server index.
            k = if self.tree[2 * k] <= self.tree[2 * k + 1] { 2 * k } else { 2 * k + 1 };
        }
        k - self.size
    }

    /// The lowest-indexed server with `free_time <= bound` (servers
    /// already idle at instant `bound`), if any.
    pub fn first_free_at_most(&self, bound: f64) -> Option<usize> {
        self.descend_first(|v| v <= bound)
    }

    /// The lowest-indexed server with `free_time < bound` (strict —
    /// the form threshold dispatchers use: backlog `< θ` at instant
    /// `now` is `free_time < now + θ`), if any.
    pub fn first_free_below(&self, bound: f64) -> Option<usize> {
        self.descend_first(|v| v < bound)
    }

    /// The server a shortest-backlog scan at instant `now` would pick:
    /// the lowest-indexed idle server if one exists (they all tie at
    /// backlog 0), else the lowest-indexed server with minimal
    /// `free_time`.
    pub fn shortest_backlog_server(&self, now: f64) -> usize {
        self.first_free_at_most(now).unwrap_or_else(|| self.min_free_server())
    }

    /// Leftmost leaf satisfying `sat`, by descending into the first
    /// subtree whose minimum satisfies it.
    fn descend_first(&self, sat: impl Fn(f64) -> bool) -> Option<usize> {
        if !sat(self.tree[1]) {
            return None;
        }
        let mut k = 1;
        while k < self.size {
            k = if sat(self.tree[2 * k]) { 2 * k } else { 2 * k + 1 };
        }
        Some(k - self.size)
    }
}

/// Routes each arriving job to one of the fleet's servers, observing
/// only the [`DispatchIndex`].
pub trait Dispatcher: std::fmt::Debug {
    /// Display name for reports.
    fn name(&self) -> String;

    /// Picks the destination server for `job`. Must return an index
    /// `< index.n_servers()`; the cluster engine rejects out-of-range
    /// routes as a dispatcher bug rather than clamping them.
    fn route(&mut self, job: &Job, index: &DispatchIndex) -> usize;

    /// Serializes this dispatcher's mutable routing state for
    /// checkpointing. Stateless dispatchers (shortest-backlog, packing,
    /// seeded-hash) keep the default no-op; anything whose route depends
    /// on dispatch history (a round-robin pointer, an RNG) must
    /// override both hooks or resumed runs will diverge.
    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        let _ = w;
    }

    /// Restores state written by [`Dispatcher::snapshot_state`] into a
    /// freshly constructed dispatcher.
    ///
    /// # Errors
    ///
    /// Returns [`sleepscale_journal::CodecError`] on truncated or
    /// malformed bytes.
    fn restore_state(
        &mut self,
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<(), sleepscale_journal::CodecError> {
        let _ = r;
        Ok(())
    }
}

/// Cycles through servers in order — the classic spreading baseline.
/// O(1) per job.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh round-robin pointer.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl Dispatcher for RoundRobin {
    fn name(&self) -> String {
        "round-robin".into()
    }

    fn route(&mut self, _job: &Job, index: &DispatchIndex) -> usize {
        let i = self.next % index.n_servers();
        self.next = self.next.wrapping_add(1);
        i
    }

    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_usize(self.next);
    }

    fn restore_state(
        &mut self,
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<(), sleepscale_journal::CodecError> {
        self.next = r.get_usize()?;
        Ok(())
    }
}

/// Uniform random routing (seeded, reproducible). O(1) per job.
#[derive(Debug)]
pub struct RandomUniform {
    rng: StdRng,
}

impl RandomUniform {
    /// Seeded uniform router.
    pub fn new(seed: u64) -> RandomUniform {
        RandomUniform { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Dispatcher for RandomUniform {
    fn name(&self) -> String {
        "random".into()
    }

    fn route(&mut self, _job: &Job, index: &DispatchIndex) -> usize {
        self.rng.gen_range(0..index.n_servers())
    }

    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        use sleepscale_journal::Snapshot;
        self.rng.snapshot(w);
    }

    fn restore_state(
        &mut self,
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<(), sleepscale_journal::CodecError> {
        use sleepscale_journal::Snapshot;
        self.rng = StdRng::restore(r)?;
        Ok(())
    }
}

/// Sends each job to the server with the least committed work — the
/// latency-optimal spreading policy. O(log N) per job via the index's
/// min-tree (previously an O(N) scan over a per-job snapshot).
#[derive(Debug, Clone, Default)]
pub struct JoinShortestBacklog;

impl JoinShortestBacklog {
    /// The JSQ-style router.
    pub fn new() -> JoinShortestBacklog {
        JoinShortestBacklog
    }
}

impl Dispatcher for JoinShortestBacklog {
    fn name(&self) -> String {
        "join-shortest-backlog".into()
    }

    fn route(&mut self, job: &Job, index: &DispatchIndex) -> usize {
        index.shortest_backlog_server(job.arrival)
    }
}

/// Packing: route to the lowest-indexed server whose backlog is under
/// `threshold_seconds`; if all are saturated, fall back to the least
/// backlog. Concentrating load leaves the tail of the fleet idle long
/// enough to reach deep sleep — energy proportionality through
/// consolidation. O(log N) per job off the same index.
#[derive(Debug, Clone)]
pub struct PackFirstFit {
    threshold_seconds: f64,
}

impl PackFirstFit {
    /// Packs up to `threshold_seconds` of backlog per server.
    pub fn new(threshold_seconds: f64) -> PackFirstFit {
        PackFirstFit { threshold_seconds: threshold_seconds.max(0.0) }
    }
}

impl Dispatcher for PackFirstFit {
    fn name(&self) -> String {
        format!("pack-first-fit({}s)", self.threshold_seconds)
    }

    fn route(&mut self, job: &Job, index: &DispatchIndex) -> usize {
        index
            .first_free_below(job.arrival + self.threshold_seconds)
            .unwrap_or_else(|| index.shortest_backlog_server(job.arrival))
    }
}

/// Stateless seeded-hash routing: each job goes to the server its
/// sequence number hashes to under a [`StreamSplit`]. Load spreads
/// uniformly like [`RandomUniform`], but the route is a pure function
/// of `(seed, sequence)` — independent of arrival order, class tags,
/// and fleet state — which is exactly the property the sharded engine
/// needs. [`crate::Cluster::run_sharded`] with the same seed produces
/// a byte-identical report to [`crate::Cluster::run`] with this
/// dispatcher. O(1) per job.
#[derive(Debug, Clone, Copy)]
pub struct SplitUniform {
    split: StreamSplit,
}

impl SplitUniform {
    /// Seeded-hash router over the fleet.
    pub fn new(seed: u64) -> SplitUniform {
        SplitUniform { split: StreamSplit::new(seed) }
    }

    /// The underlying splitter (for handing to the sharded engine).
    pub fn split(&self) -> StreamSplit {
        self.split
    }
}

impl Dispatcher for SplitUniform {
    fn name(&self) -> String {
        format!("split-uniform({})", self.split.seed())
    }

    fn route(&mut self, job: &Job, index: &DispatchIndex) -> usize {
        self.split.lane_of(job, index.n_servers())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An index whose servers carry the given free times.
    fn index(free_times: &[f64]) -> DispatchIndex {
        let mut idx = DispatchIndex::new(free_times.len());
        for (i, &t) in free_times.iter().enumerate() {
            idx.update(i, t);
        }
        idx
    }

    fn job(arrival: f64) -> Job {
        Job { id: 0, arrival, size: 0.1 }
    }

    /// The O(N) reference: first index among minimal clamped backlogs —
    /// the scan the PR-2 engine ran per job.
    fn linear_shortest_backlog(free_times: &[f64], now: f64) -> usize {
        free_times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, (t - now).max(0.0)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("backlogs are finite"))
            .map(|(i, _)| i)
            .expect("clusters are non-empty")
    }

    #[test]
    fn round_robin_cycles() {
        let mut d = RoundRobin::new();
        let idx = index(&[0.0, 0.0, 0.0]);
        let picks: Vec<usize> = (0..6).map(|_| d.route(&job(0.0), &idx)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_is_seeded_and_in_range() {
        let idx = index(&[0.0; 4]);
        let picks = |seed| {
            let mut d = RandomUniform::new(seed);
            (0..32).map(|_| d.route(&job(0.0), &idx)).collect::<Vec<_>>()
        };
        assert_eq!(picks(1), picks(1));
        assert_ne!(picks(1), picks(2));
        assert!(picks(1).iter().all(|&i| i < 4));
    }

    #[test]
    fn shortest_backlog_picks_minimum() {
        let mut d = JoinShortestBacklog::new();
        assert_eq!(d.route(&job(0.0), &index(&[3.0, 0.5, 2.0])), 1);
        // Idle servers (free_time <= arrival) all tie at backlog 0; the
        // lowest index wins, exactly like the linear scan.
        assert_eq!(d.route(&job(4.0), &index(&[3.0, 0.5, 2.0])), 0);
    }

    #[test]
    fn pack_first_fit_fills_then_overflows() {
        let mut d = PackFirstFit::new(1.0);
        assert_eq!(d.route(&job(0.0), &index(&[0.2, 0.0, 0.0])), 0);
        assert_eq!(d.route(&job(0.0), &index(&[1.5, 0.4, 0.0])), 1);
        // All saturated: least backlog wins.
        assert_eq!(d.route(&job(0.0), &index(&[3.0, 2.0, 2.5])), 1);
    }

    #[test]
    fn split_uniform_is_the_pure_hash_and_ignores_state() {
        let mut d = SplitUniform::new(7);
        let split = d.split();
        for n in [1usize, 2, 5, 64] {
            let idle = index(&vec![0.0; n]);
            let busy = index(&(0..n).map(|i| i as f64 * 3.0).collect::<Vec<_>>());
            for seq in 0..200u64 {
                let j = Job { id: seq, arrival: 0.0, size: 0.1 };
                let pick = d.route(&j, &idle);
                assert!(pick < n);
                assert_eq!(pick, split.lane_of(&j, n), "route is the split hash");
                assert_eq!(pick, d.route(&j, &busy), "fleet state is invisible");
            }
        }
        assert_eq!(d.name(), "split-uniform(7)");
    }

    #[test]
    fn index_updates_rekey_one_server() {
        let mut idx = DispatchIndex::new(5);
        assert_eq!(idx.min_free_server(), 0);
        for i in 0..5 {
            idx.update(i, 10.0 - i as f64);
        }
        assert_eq!(idx.min_free_server(), 4);
        assert_eq!(idx.free_time(4), 6.0);
        idx.update(4, 99.0);
        assert_eq!(idx.min_free_server(), 3);
        assert_eq!(idx.first_free_below(7.5), Some(3));
        assert_eq!(idx.first_free_at_most(7.0), Some(3));
        assert_eq!(idx.first_free_below(6.9), None);
        assert_eq!(idx.backlog(0, 4.0), 6.0);
        assert_eq!(idx.backlog(0, 12.0), 0.0);
        assert_eq!(idx.free_times(), &[10.0, 9.0, 8.0, 7.0, 99.0]);
    }

    #[test]
    fn non_power_of_two_fleets_ignore_padding() {
        // 5 servers pad to 8 leaves of +inf; padding must never route.
        let mut idx = DispatchIndex::new(5);
        for i in 0..5 {
            idx.update(i, 50.0 + i as f64);
        }
        assert_eq!(idx.min_free_server(), 0);
        assert_eq!(idx.first_free_at_most(1e12), Some(0));
        assert_eq!(idx.shortest_backlog_server(0.0), 0);
    }

    #[test]
    fn tree_matches_linear_scan_on_a_random_walk() {
        let mut rng = StdRng::seed_from_u64(99);
        for &n in &[1usize, 2, 3, 7, 8, 13, 64] {
            let mut idx = DispatchIndex::new(n);
            let mut free = vec![0.0f64; n];
            let mut now = 0.0;
            for _ in 0..400 {
                now += rng.gen_range(0.0..1.0);
                let tree_pick = idx.shortest_backlog_server(now);
                let linear_pick = linear_shortest_backlog(&free, now);
                assert_eq!(tree_pick, linear_pick, "n={n} now={now} free={free:?}");
                let commit = rng.gen_range(0.0..3.0);
                free[tree_pick] = free[tree_pick].max(now) + commit;
                idx.update(tree_pick, free[tree_pick]);
            }
        }
    }
}
