use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sleepscale_sim::Job;

/// What a dispatcher may observe about a server when routing
/// (deliberately queue-level, not power-level: front-end load balancers
/// see backlogs, not C-states).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerView {
    /// Server index.
    pub index: usize,
    /// Seconds of committed work remaining at the routing instant
    /// (0 means the server is idle, possibly asleep).
    pub backlog_seconds: f64,
}

/// Routes each arriving job to one of `n` servers.
pub trait Dispatcher: std::fmt::Debug {
    /// Display name for reports.
    fn name(&self) -> String;

    /// Picks the destination server for `job`.
    fn route(&mut self, job: &Job, servers: &[ServerView]) -> usize;
}

/// Cycles through servers in order — the classic spreading baseline.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh round-robin pointer.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl Dispatcher for RoundRobin {
    fn name(&self) -> String {
        "round-robin".into()
    }

    fn route(&mut self, _job: &Job, servers: &[ServerView]) -> usize {
        let i = self.next % servers.len();
        self.next = self.next.wrapping_add(1);
        i
    }
}

/// Uniform random routing (seeded, reproducible).
#[derive(Debug)]
pub struct RandomUniform {
    rng: StdRng,
}

impl RandomUniform {
    /// Seeded uniform router.
    pub fn new(seed: u64) -> RandomUniform {
        RandomUniform { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Dispatcher for RandomUniform {
    fn name(&self) -> String {
        "random".into()
    }

    fn route(&mut self, _job: &Job, servers: &[ServerView]) -> usize {
        self.rng.gen_range(0..servers.len())
    }
}

/// Sends each job to the server with the least committed work — the
/// latency-optimal spreading policy.
#[derive(Debug, Clone, Default)]
pub struct JoinShortestBacklog;

impl JoinShortestBacklog {
    /// The JSQ-style router.
    pub fn new() -> JoinShortestBacklog {
        JoinShortestBacklog
    }
}

impl Dispatcher for JoinShortestBacklog {
    fn name(&self) -> String {
        "join-shortest-backlog".into()
    }

    fn route(&mut self, _job: &Job, servers: &[ServerView]) -> usize {
        servers
            .iter()
            .min_by(|a, b| {
                a.backlog_seconds.partial_cmp(&b.backlog_seconds).expect("backlogs are finite")
            })
            .map(|s| s.index)
            .expect("clusters are non-empty")
    }
}

/// Packing: route to the lowest-indexed server whose backlog is under
/// `threshold_seconds`; if all are saturated, fall back to the least
/// backlog. Concentrating load leaves the tail of the fleet idle long
/// enough to reach deep sleep — energy proportionality through
/// consolidation.
#[derive(Debug, Clone)]
pub struct PackFirstFit {
    threshold_seconds: f64,
}

impl PackFirstFit {
    /// Packs up to `threshold_seconds` of backlog per server.
    pub fn new(threshold_seconds: f64) -> PackFirstFit {
        PackFirstFit { threshold_seconds: threshold_seconds.max(0.0) }
    }
}

impl Dispatcher for PackFirstFit {
    fn name(&self) -> String {
        format!("pack-first-fit({}s)", self.threshold_seconds)
    }

    fn route(&mut self, _job: &Job, servers: &[ServerView]) -> usize {
        servers
            .iter()
            .find(|s| s.backlog_seconds < self.threshold_seconds)
            .map(|s| s.index)
            .unwrap_or_else(|| {
                servers
                    .iter()
                    .min_by(|a, b| {
                        a.backlog_seconds
                            .partial_cmp(&b.backlog_seconds)
                            .expect("backlogs are finite")
                    })
                    .map(|s| s.index)
                    .expect("clusters are non-empty")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(backlogs: &[f64]) -> Vec<ServerView> {
        backlogs
            .iter()
            .enumerate()
            .map(|(index, &backlog_seconds)| ServerView { index, backlog_seconds })
            .collect()
    }

    fn job() -> Job {
        Job { id: 0, arrival: 0.0, size: 0.1 }
    }

    #[test]
    fn round_robin_cycles() {
        let mut d = RoundRobin::new();
        let v = views(&[0.0, 0.0, 0.0]);
        let picks: Vec<usize> = (0..6).map(|_| d.route(&job(), &v)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_is_seeded_and_in_range() {
        let v = views(&[0.0; 4]);
        let picks = |seed| {
            let mut d = RandomUniform::new(seed);
            (0..32).map(|_| d.route(&job(), &v)).collect::<Vec<_>>()
        };
        assert_eq!(picks(1), picks(1));
        assert_ne!(picks(1), picks(2));
        assert!(picks(1).iter().all(|&i| i < 4));
    }

    #[test]
    fn shortest_backlog_picks_minimum() {
        let mut d = JoinShortestBacklog::new();
        assert_eq!(d.route(&job(), &views(&[3.0, 0.5, 2.0])), 1);
    }

    #[test]
    fn pack_first_fit_fills_then_overflows() {
        let mut d = PackFirstFit::new(1.0);
        assert_eq!(d.route(&job(), &views(&[0.2, 0.0, 0.0])), 0);
        assert_eq!(d.route(&job(), &views(&[1.5, 0.4, 0.0])), 1);
        // All saturated: least backlog wins.
        assert_eq!(d.route(&job(), &views(&[3.0, 2.0, 2.5])), 1);
    }
}
