use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sleepscale_sim::{ClassId, Job, StreamSplit};

/// An incrementally maintained routing index over the fleet: each
/// server's `free_time` (the instant its committed work drains) in a
/// flat tournament tree, so dispatchers answer their queries in
/// O(log N) without rebuilding any per-job snapshot.
///
/// The engine updates exactly one entry per dispatched job (the routed
/// server's), so the index is the only cluster state a dispatcher
/// observes — deliberately queue-level, not power-level: front-end load
/// balancers see backlogs, not C-states. Backlog ordering at any
/// routing instant equals `free_time` ordering (`backlog =
/// max(free_time − now, 0)`), which is what lets shortest-backlog
/// routing ride a min-tree instead of a linear scan.
///
/// All queries break ties toward the *lowest server index*, matching a
/// first-minimum linear scan over per-server backlogs exactly (the
/// property suite pins this equivalence down).
#[derive(Debug, Clone)]
pub struct DispatchIndex {
    n: usize,
    /// Leaf count, `n` rounded up to a power of two; leaf `i` lives at
    /// `tree[size + i]`, padding leaves hold `+∞`.
    size: usize,
    /// 1-based binary min-tree over free times (`tree[0]` unused).
    tree: Vec<f64>,
}

impl DispatchIndex {
    /// An index for `n` servers (clamped to ≥ 1), all initially idle
    /// since t = 0.
    pub fn new(n: usize) -> DispatchIndex {
        let n = n.max(1);
        let size = n.next_power_of_two();
        let mut tree = vec![f64::INFINITY; 2 * size];
        for leaf in &mut tree[size..size + n] {
            *leaf = 0.0;
        }
        for k in (1..size).rev() {
            tree[k] = tree[2 * k].min(tree[2 * k + 1]);
        }
        DispatchIndex { n, size, tree }
    }

    /// Fleet size.
    pub fn n_servers(&self) -> usize {
        self.n
    }

    /// Server `i`'s committed-work completion instant.
    pub fn free_time(&self, i: usize) -> f64 {
        self.tree[self.size + i]
    }

    /// Every server's `free_time`, by server index (the raw leaf view —
    /// handy for linear-scan reference implementations and tests).
    pub fn free_times(&self) -> &[f64] {
        &self.tree[self.size..self.size + self.n]
    }

    /// Server `i`'s backlog at instant `now`, seconds (0 means idle,
    /// possibly asleep).
    pub fn backlog(&self, i: usize, now: f64) -> f64 {
        (self.free_time(i) - now).max(0.0)
    }

    /// Re-keys server `i` after work was committed to (or drained from)
    /// it — the engine's one O(log N) write per dispatched job.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `free_time` is not finite.
    pub fn update(&mut self, i: usize, free_time: f64) {
        assert!(i < self.n, "server {i} out of range for {} servers", self.n);
        assert!(free_time.is_finite(), "free_time must be finite, got {free_time}");
        let mut k = self.size + i;
        self.tree[k] = free_time;
        k /= 2;
        while k >= 1 {
            self.tree[k] = self.tree[2 * k].min(self.tree[2 * k + 1]);
            k /= 2;
        }
    }

    /// The lowest-indexed server whose `free_time` is minimal.
    pub fn min_free_server(&self) -> usize {
        let mut k = 1;
        while k < self.size {
            // `<=` prefers the left child on ties, which is the lower
            // server index.
            k = if self.tree[2 * k] <= self.tree[2 * k + 1] { 2 * k } else { 2 * k + 1 };
        }
        k - self.size
    }

    /// The lowest-indexed server with `free_time <= bound` (servers
    /// already idle at instant `bound`), if any.
    pub fn first_free_at_most(&self, bound: f64) -> Option<usize> {
        self.descend_first(|v| v <= bound)
    }

    /// The lowest-indexed server with `free_time < bound` (strict —
    /// the form threshold dispatchers use: backlog `< θ` at instant
    /// `now` is `free_time < now + θ`), if any.
    pub fn first_free_below(&self, bound: f64) -> Option<usize> {
        self.descend_first(|v| v < bound)
    }

    /// The server a shortest-backlog scan at instant `now` would pick:
    /// the lowest-indexed idle server if one exists (they all tie at
    /// backlog 0), else the lowest-indexed server with minimal
    /// `free_time`.
    pub fn shortest_backlog_server(&self, now: f64) -> usize {
        self.first_free_at_most(now).unwrap_or_else(|| self.min_free_server())
    }

    /// Leftmost leaf satisfying `sat`, by descending into the first
    /// subtree whose minimum satisfies it.
    fn descend_first(&self, sat: impl Fn(f64) -> bool) -> Option<usize> {
        if !sat(self.tree[1]) {
            return None;
        }
        let mut k = 1;
        while k < self.size {
            k = if sat(self.tree[2 * k]) { 2 * k } else { 2 * k + 1 };
        }
        Some(k - self.size)
    }

    /// Marks server `i` unavailable for routing: its leaf becomes `+∞`,
    /// exactly like a padding leaf, so no query ever returns it. The
    /// autoscaler parks drained servers this way; [`DispatchIndex::update`]
    /// with a finite free time makes the server routable again.
    pub fn set_unavailable(&mut self, i: usize) {
        assert!(i < self.n, "server {i} out of range for {} servers", self.n);
        let mut k = self.size + i;
        self.tree[k] = f64::INFINITY;
        k /= 2;
        while k >= 1 {
            self.tree[k] = self.tree[2 * k].min(self.tree[2 * k + 1]);
            k /= 2;
        }
    }

    /// Whether server `i` is routable (not marked unavailable).
    pub fn is_available(&self, i: usize) -> bool {
        self.tree[self.size + i].is_finite()
    }

    /// The lowest-indexed server in `[lo, hi)` with `free_time < bound`
    /// (the range-restricted form of [`DispatchIndex::first_free_below`]
    /// that class-affinity routing runs per preferred group), if any.
    pub fn first_free_below_in(&self, lo: usize, hi: usize, bound: f64) -> Option<usize> {
        self.descend_first_in(1, 0, self.size, lo, hi.min(self.n), &|v| v < bound)
    }

    /// The lowest-indexed server in `[lo, hi)` whose `free_time` is
    /// minimal (ties to the lowest index), or `None` when the range is
    /// empty or entirely unavailable.
    pub fn min_free_server_in(&self, lo: usize, hi: usize) -> Option<usize> {
        let (v, i) = self.min_in(1, 0, self.size, lo, hi.min(self.n));
        v.is_finite().then_some(i)
    }

    /// Leftmost leaf in `[lo, hi)` satisfying `sat`, recursing only into
    /// subtrees that overlap the range and whose minimum satisfies it —
    /// O(log N) like the unrestricted descent.
    #[allow(clippy::too_many_arguments)]
    fn descend_first_in(
        &self,
        k: usize,
        node_lo: usize,
        node_hi: usize,
        lo: usize,
        hi: usize,
        sat: &impl Fn(f64) -> bool,
    ) -> Option<usize> {
        if node_hi <= lo || hi <= node_lo || !sat(self.tree[k]) {
            return None;
        }
        if k >= self.size {
            return Some(k - self.size);
        }
        let mid = (node_lo + node_hi) / 2;
        self.descend_first_in(2 * k, node_lo, mid, lo, hi, sat)
            .or_else(|| self.descend_first_in(2 * k + 1, mid, node_hi, lo, hi, sat))
    }

    /// `(min free_time, leftmost index)` over leaves in `[lo, hi)`;
    /// `(+∞, lo)` for an empty intersection.
    fn min_in(
        &self,
        k: usize,
        node_lo: usize,
        node_hi: usize,
        lo: usize,
        hi: usize,
    ) -> (f64, usize) {
        if node_hi <= lo || hi <= node_lo {
            return (f64::INFINITY, lo);
        }
        if lo <= node_lo && node_hi <= hi {
            // Whole node in range: descend to its leftmost minimal leaf.
            let mut j = k;
            while j < self.size {
                j = if self.tree[2 * j] <= self.tree[2 * j + 1] { 2 * j } else { 2 * j + 1 };
            }
            return (self.tree[k], j - self.size);
        }
        let mid = (node_lo + node_hi) / 2;
        let left = self.min_in(2 * k, node_lo, mid, lo, hi);
        let right = self.min_in(2 * k + 1, mid, node_hi, lo, hi);
        // `<=` keeps the leftmost index on ties.
        if left.0 <= right.0 {
            left
        } else {
            right
        }
    }
}

/// The routable subset of the fleet while the autoscaler has servers
/// parked: a sorted list of active slot indices plus, per group, the
/// active-prefix length (the controller always parks from each group's
/// tail, so a group's active servers are a contiguous prefix of its
/// slot range).
///
/// The cluster engine only hands dispatchers an `ActiveSet` when an
/// autoscaler is configured; otherwise they see the plain
/// [`Dispatcher::route`] path, byte-for-byte as before.
#[derive(Debug, Clone, Copy)]
pub struct ActiveSet<'a> {
    slots: &'a [usize],
    /// Per group: `(first slot, active count)` — the active prefix.
    groups: &'a [(usize, usize)],
}

impl<'a> ActiveSet<'a> {
    /// A view over `slots` (ascending active slot indices) and the
    /// per-group active prefixes they were built from.
    pub fn new(slots: &'a [usize], groups: &'a [(usize, usize)]) -> ActiveSet<'a> {
        ActiveSet { slots, groups }
    }

    /// Number of active servers.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no server is active (the engine never lets this happen —
    /// the controller keeps a minimum active floor per group).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The `i`-th active server's slot index.
    pub fn slot(&self, i: usize) -> usize {
        self.slots[i]
    }

    /// Group `g`'s active slot range `[start, start + active)`.
    pub fn group_range(&self, g: usize) -> std::ops::Range<usize> {
        let (start, active) = self.groups[g];
        start..start + active
    }

    /// Number of groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }
}

/// How the most recent route related to the job's preferred placement —
/// the telemetry-facing classification of a dispatch decision. Only
/// routing policies with a notion of preference (today: class affinity)
/// ever report anything but `Preferred`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouteDecision {
    /// The job landed where its routing policy preferred it.
    #[default]
    Preferred,
    /// The preferred group was saturated; the job spilled to an
    /// under-threshold server elsewhere in the fleet.
    Spill {
        /// The group the job's class preferred.
        preferred_group: u32,
    },
    /// Every server was saturated; the job fell back to the fleet-wide
    /// shortest backlog.
    Fallback {
        /// The group the job's class preferred.
        preferred_group: u32,
    },
}

/// Routes each arriving job to one of the fleet's servers, observing
/// only the [`DispatchIndex`].
pub trait Dispatcher: std::fmt::Debug {
    /// Display name for reports.
    fn name(&self) -> String;

    /// Classifies the most recent [`Dispatcher::route`] /
    /// [`Dispatcher::route_active`] call. Dispatchers without a
    /// preference structure keep the default (always `Preferred`).
    fn last_route(&self) -> RouteDecision {
        RouteDecision::Preferred
    }

    /// Picks the destination server for `job`. Must return an index
    /// `< index.n_servers()`; the cluster engine rejects out-of-range
    /// routes as a dispatcher bug rather than clamping them.
    fn route(&mut self, job: &Job, index: &DispatchIndex) -> usize;

    /// Picks the destination server for `job` while the autoscaler has
    /// part of the fleet parked: only servers in `active` may be
    /// returned. The default delegates to [`Dispatcher::route`], which
    /// is correct for index-reading dispatchers (parked leaves sit at
    /// `+∞`, so backlog and threshold queries never select them);
    /// dispatchers that enumerate servers positionally (round-robin,
    /// random, seeded-hash) override this to draw from the active set.
    fn route_active(&mut self, job: &Job, index: &DispatchIndex, active: &ActiveSet<'_>) -> usize {
        let _ = active;
        self.route(job, index)
    }

    /// Serializes this dispatcher's mutable routing state for
    /// checkpointing. Stateless dispatchers (shortest-backlog, packing,
    /// seeded-hash) keep the default no-op; anything whose route depends
    /// on dispatch history (a round-robin pointer, an RNG) must
    /// override both hooks or resumed runs will diverge.
    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        let _ = w;
    }

    /// Restores state written by [`Dispatcher::snapshot_state`] into a
    /// freshly constructed dispatcher.
    ///
    /// # Errors
    ///
    /// Returns [`sleepscale_journal::CodecError`] on truncated or
    /// malformed bytes.
    fn restore_state(
        &mut self,
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<(), sleepscale_journal::CodecError> {
        let _ = r;
        Ok(())
    }
}

/// Cycles through servers in order — the classic spreading baseline.
/// O(1) per job.
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A fresh round-robin pointer.
    pub fn new() -> RoundRobin {
        RoundRobin::default()
    }
}

impl Dispatcher for RoundRobin {
    fn name(&self) -> String {
        "round-robin".into()
    }

    fn route(&mut self, _job: &Job, index: &DispatchIndex) -> usize {
        let i = self.next % index.n_servers();
        self.next = self.next.wrapping_add(1);
        i
    }

    fn route_active(
        &mut self,
        _job: &Job,
        _index: &DispatchIndex,
        active: &ActiveSet<'_>,
    ) -> usize {
        let i = active.slot(self.next % active.len());
        self.next = self.next.wrapping_add(1);
        i
    }

    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_usize(self.next);
    }

    fn restore_state(
        &mut self,
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<(), sleepscale_journal::CodecError> {
        self.next = r.get_usize()?;
        Ok(())
    }
}

/// Uniform random routing (seeded, reproducible). O(1) per job.
#[derive(Debug)]
pub struct RandomUniform {
    rng: StdRng,
}

impl RandomUniform {
    /// Seeded uniform router.
    pub fn new(seed: u64) -> RandomUniform {
        RandomUniform { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Dispatcher for RandomUniform {
    fn name(&self) -> String {
        "random".into()
    }

    fn route(&mut self, _job: &Job, index: &DispatchIndex) -> usize {
        self.rng.gen_range(0..index.n_servers())
    }

    fn route_active(
        &mut self,
        _job: &Job,
        _index: &DispatchIndex,
        active: &ActiveSet<'_>,
    ) -> usize {
        active.slot(self.rng.gen_range(0..active.len()))
    }

    fn snapshot_state(&self, w: &mut sleepscale_journal::ByteWriter) {
        use sleepscale_journal::Snapshot;
        self.rng.snapshot(w);
    }

    fn restore_state(
        &mut self,
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<(), sleepscale_journal::CodecError> {
        use sleepscale_journal::Snapshot;
        self.rng = StdRng::restore(r)?;
        Ok(())
    }
}

/// Sends each job to the server with the least committed work — the
/// latency-optimal spreading policy. O(log N) per job via the index's
/// min-tree (previously an O(N) scan over a per-job snapshot).
#[derive(Debug, Clone, Default)]
pub struct JoinShortestBacklog;

impl JoinShortestBacklog {
    /// The JSQ-style router.
    pub fn new() -> JoinShortestBacklog {
        JoinShortestBacklog
    }
}

impl Dispatcher for JoinShortestBacklog {
    fn name(&self) -> String {
        "join-shortest-backlog".into()
    }

    fn route(&mut self, job: &Job, index: &DispatchIndex) -> usize {
        index.shortest_backlog_server(job.arrival)
    }
}

/// Packing: route to the lowest-indexed server whose backlog is under
/// `threshold_seconds`; if all are saturated, fall back to the least
/// backlog. Concentrating load leaves the tail of the fleet idle long
/// enough to reach deep sleep — energy proportionality through
/// consolidation. O(log N) per job off the same index.
#[derive(Debug, Clone)]
pub struct PackFirstFit {
    threshold_seconds: f64,
}

impl PackFirstFit {
    /// Packs up to `threshold_seconds` of backlog per server.
    pub fn new(threshold_seconds: f64) -> PackFirstFit {
        PackFirstFit { threshold_seconds: threshold_seconds.max(0.0) }
    }
}

impl Dispatcher for PackFirstFit {
    fn name(&self) -> String {
        format!("pack-first-fit({}s)", self.threshold_seconds)
    }

    fn route(&mut self, job: &Job, index: &DispatchIndex) -> usize {
        index
            .first_free_below(job.arrival + self.threshold_seconds)
            .unwrap_or_else(|| index.shortest_backlog_server(job.arrival))
    }
}

/// Stateless seeded-hash routing: each job goes to the server its
/// sequence number hashes to under a [`StreamSplit`]. Load spreads
/// uniformly like [`RandomUniform`], but the route is a pure function
/// of `(seed, sequence)` — independent of arrival order, class tags,
/// and fleet state — which is exactly the property the sharded engine
/// needs. [`crate::Cluster::run_sharded`] with the same seed produces
/// a byte-identical report to [`crate::Cluster::run`] with this
/// dispatcher. O(1) per job.
#[derive(Debug, Clone, Copy)]
pub struct SplitUniform {
    split: StreamSplit,
}

impl SplitUniform {
    /// Seeded-hash router over the fleet.
    pub fn new(seed: u64) -> SplitUniform {
        SplitUniform { split: StreamSplit::new(seed) }
    }

    /// The underlying splitter (for handing to the sharded engine).
    pub fn split(&self) -> StreamSplit {
        self.split
    }
}

impl Dispatcher for SplitUniform {
    fn name(&self) -> String {
        format!("split-uniform({})", self.split.seed())
    }

    fn route(&mut self, job: &Job, index: &DispatchIndex) -> usize {
        self.split.lane_of(job, index.n_servers())
    }

    fn route_active(&mut self, job: &Job, _index: &DispatchIndex, active: &ActiveSet<'_>) -> usize {
        // Still a pure function of (seed, sequence, active set): the
        // hash picks a lane among the active servers, then maps through
        // the active list — the sharded engine reproduces this exactly.
        active.slot(self.split.lane_of(job, active.len()))
    }
}

/// Class-aware routing: each job class has a preferred [`ServerGroup`]
/// (interactive classes to fast groups, batch to efficient ones); a job
/// joins the shortest backlog *within its preferred group* while that
/// group has a server under the spill threshold, spills to the
/// lowest-indexed under-threshold server anywhere in the fleet when the
/// preferred group saturates, and falls back to the fleet-wide shortest
/// backlog when every server is saturated. All three steps tie-break
/// toward the lowest server index (the property suite pins the whole
/// decision against a naive linear scan). O(G log N) per job.
///
/// [`ServerGroup`]: crate::ServerGroup
#[derive(Debug, Clone)]
pub struct ClassAffinity {
    /// Per group: `(first slot, slot count)` in fleet slot order.
    groups: Vec<(usize, usize)>,
    /// Class `c` prefers group `class_groups[min(c, len - 1)]`.
    class_groups: Vec<usize>,
    threshold_seconds: f64,
    last: RouteDecision,
}

impl ClassAffinity {
    /// A class-affinity router over a fleet whose groups have
    /// `group_sizes` servers (in fleet slot order). `class_groups[c]`
    /// is class `c`'s preferred group; classes beyond the table reuse
    /// its last entry. `threshold_seconds` is the per-server backlog
    /// above which a group counts as saturated.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet or class table, or a class mapped to a
    /// group that does not exist.
    pub fn new(
        group_sizes: &[usize],
        class_groups: Vec<usize>,
        threshold_seconds: f64,
    ) -> ClassAffinity {
        assert!(!group_sizes.is_empty(), "class affinity needs at least one group");
        assert!(!class_groups.is_empty(), "class affinity needs at least one class mapping");
        assert!(
            class_groups.iter().all(|&g| g < group_sizes.len()),
            "class mapped to a group beyond the fleet's {} groups",
            group_sizes.len()
        );
        let mut groups = Vec::with_capacity(group_sizes.len());
        let mut start = 0;
        for &count in group_sizes {
            groups.push((start, count));
            start += count;
        }
        ClassAffinity {
            groups,
            class_groups,
            threshold_seconds: threshold_seconds.max(0.0),
            last: RouteDecision::Preferred,
        }
    }

    /// Class `c`'s preferred group.
    pub fn preferred_group(&self, class: ClassId) -> usize {
        let c = (class.0 as usize).min(self.class_groups.len() - 1);
        self.class_groups[c]
    }

    /// The shared decision over an arbitrary per-group range view —
    /// `route` hands it the configured full ranges, `route_active` the
    /// autoscaler's active prefixes.
    fn pick(
        &self,
        job: &Job,
        index: &DispatchIndex,
        range_of: impl Fn(usize) -> (usize, usize),
    ) -> (usize, RouteDecision) {
        let g = self.preferred_group(job.class());
        let bound = job.arrival + self.threshold_seconds;
        let (start, len) = range_of(g);
        if let Some(i) = index.first_free_below_in(start, start + len, bound) {
            return (i, RouteDecision::Preferred);
        }
        // Preferred group saturated: spill to the lowest-indexed
        // under-threshold server anywhere (groups scan in ascending
        // slot order, so the first hit is the fleet-wide lowest index).
        for other in 0..self.groups.len() {
            let (start, len) = range_of(other);
            if let Some(i) = index.first_free_below_in(start, start + len, bound) {
                return (i, RouteDecision::Spill { preferred_group: g as u32 });
            }
        }
        // Everything saturated: fleet-wide shortest backlog, lowest
        // index on ties (ranges ascend, so strictly-less keeps the
        // leftmost of equals).
        let mut best: Option<(f64, usize)> = None;
        for g in 0..self.groups.len() {
            let (start, len) = range_of(g);
            if let Some(i) = index.min_free_server_in(start, start + len) {
                let backlog = index.backlog(i, job.arrival);
                if best.is_none_or(|(b, _)| backlog < b) {
                    best = Some((backlog, i));
                }
            }
        }
        let i = best.expect("class affinity requires a non-empty active fleet").1;
        (i, RouteDecision::Fallback { preferred_group: g as u32 })
    }
}

impl Dispatcher for ClassAffinity {
    fn name(&self) -> String {
        format!("class-affinity({}g,{}s)", self.groups.len(), self.threshold_seconds)
    }

    fn last_route(&self) -> RouteDecision {
        self.last
    }

    fn route(&mut self, job: &Job, index: &DispatchIndex) -> usize {
        let (i, decision) = self.pick(job, index, |g| self.groups[g]);
        self.last = decision;
        i
    }

    fn route_active(&mut self, job: &Job, index: &DispatchIndex, active: &ActiveSet<'_>) -> usize {
        let (i, decision) = self.pick(job, index, |g| {
            let r = active.group_range(g);
            (r.start, r.end - r.start)
        });
        self.last = decision;
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An index whose servers carry the given free times.
    fn index(free_times: &[f64]) -> DispatchIndex {
        let mut idx = DispatchIndex::new(free_times.len());
        for (i, &t) in free_times.iter().enumerate() {
            idx.update(i, t);
        }
        idx
    }

    fn job(arrival: f64) -> Job {
        Job { id: 0, arrival, size: 0.1 }
    }

    /// The O(N) reference: first index among minimal clamped backlogs —
    /// the scan the PR-2 engine ran per job.
    fn linear_shortest_backlog(free_times: &[f64], now: f64) -> usize {
        free_times
            .iter()
            .enumerate()
            .map(|(i, &t)| (i, (t - now).max(0.0)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("backlogs are finite"))
            .map(|(i, _)| i)
            .expect("clusters are non-empty")
    }

    #[test]
    fn round_robin_cycles() {
        let mut d = RoundRobin::new();
        let idx = index(&[0.0, 0.0, 0.0]);
        let picks: Vec<usize> = (0..6).map(|_| d.route(&job(0.0), &idx)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn random_is_seeded_and_in_range() {
        let idx = index(&[0.0; 4]);
        let picks = |seed| {
            let mut d = RandomUniform::new(seed);
            (0..32).map(|_| d.route(&job(0.0), &idx)).collect::<Vec<_>>()
        };
        assert_eq!(picks(1), picks(1));
        assert_ne!(picks(1), picks(2));
        assert!(picks(1).iter().all(|&i| i < 4));
    }

    #[test]
    fn shortest_backlog_picks_minimum() {
        let mut d = JoinShortestBacklog::new();
        assert_eq!(d.route(&job(0.0), &index(&[3.0, 0.5, 2.0])), 1);
        // Idle servers (free_time <= arrival) all tie at backlog 0; the
        // lowest index wins, exactly like the linear scan.
        assert_eq!(d.route(&job(4.0), &index(&[3.0, 0.5, 2.0])), 0);
    }

    #[test]
    fn pack_first_fit_fills_then_overflows() {
        let mut d = PackFirstFit::new(1.0);
        assert_eq!(d.route(&job(0.0), &index(&[0.2, 0.0, 0.0])), 0);
        assert_eq!(d.route(&job(0.0), &index(&[1.5, 0.4, 0.0])), 1);
        // All saturated: least backlog wins.
        assert_eq!(d.route(&job(0.0), &index(&[3.0, 2.0, 2.5])), 1);
    }

    #[test]
    fn split_uniform_is_the_pure_hash_and_ignores_state() {
        let mut d = SplitUniform::new(7);
        let split = d.split();
        for n in [1usize, 2, 5, 64] {
            let idle = index(&vec![0.0; n]);
            let busy = index(&(0..n).map(|i| i as f64 * 3.0).collect::<Vec<_>>());
            for seq in 0..200u64 {
                let j = Job { id: seq, arrival: 0.0, size: 0.1 };
                let pick = d.route(&j, &idle);
                assert!(pick < n);
                assert_eq!(pick, split.lane_of(&j, n), "route is the split hash");
                assert_eq!(pick, d.route(&j, &busy), "fleet state is invisible");
            }
        }
        assert_eq!(d.name(), "split-uniform(7)");
    }

    #[test]
    fn index_updates_rekey_one_server() {
        let mut idx = DispatchIndex::new(5);
        assert_eq!(idx.min_free_server(), 0);
        for i in 0..5 {
            idx.update(i, 10.0 - i as f64);
        }
        assert_eq!(idx.min_free_server(), 4);
        assert_eq!(idx.free_time(4), 6.0);
        idx.update(4, 99.0);
        assert_eq!(idx.min_free_server(), 3);
        assert_eq!(idx.first_free_below(7.5), Some(3));
        assert_eq!(idx.first_free_at_most(7.0), Some(3));
        assert_eq!(idx.first_free_below(6.9), None);
        assert_eq!(idx.backlog(0, 4.0), 6.0);
        assert_eq!(idx.backlog(0, 12.0), 0.0);
        assert_eq!(idx.free_times(), &[10.0, 9.0, 8.0, 7.0, 99.0]);
    }

    #[test]
    fn non_power_of_two_fleets_ignore_padding() {
        // 5 servers pad to 8 leaves of +inf; padding must never route.
        let mut idx = DispatchIndex::new(5);
        for i in 0..5 {
            idx.update(i, 50.0 + i as f64);
        }
        assert_eq!(idx.min_free_server(), 0);
        assert_eq!(idx.first_free_at_most(1e12), Some(0));
        assert_eq!(idx.shortest_backlog_server(0.0), 0);
    }

    #[test]
    fn unavailable_servers_never_route() {
        let mut idx = index(&[5.0, 1.0, 3.0, 2.0]);
        idx.set_unavailable(1);
        assert!(!idx.is_available(1));
        assert!(idx.is_available(0));
        assert_eq!(idx.min_free_server(), 3);
        assert_eq!(idx.first_free_below(10.0), Some(0));
        assert_eq!(idx.shortest_backlog_server(2.5), 3);
        // Re-keying with a finite time makes the server routable again.
        idx.update(1, 0.0);
        assert!(idx.is_available(1));
        assert_eq!(idx.min_free_server(), 1);
    }

    #[test]
    fn range_queries_match_linear_scans() {
        let mut rng = StdRng::seed_from_u64(41);
        for &n in &[1usize, 2, 5, 8, 13] {
            let mut idx = DispatchIndex::new(n);
            let mut free = vec![0.0f64; n];
            for step in 0..300 {
                let i = rng.gen_range(0..n);
                free[i] = rng.gen_range(0.0..8.0);
                idx.update(i, free[i]);
                if rng.gen_range(0..4) == 0 {
                    free[i] = f64::INFINITY;
                    idx.set_unavailable(i);
                }
                let lo = rng.gen_range(0..n);
                let hi = rng.gen_range(lo..n + 1);
                let bound = rng.gen_range(0.0..9.0);
                let linear_below = (lo..hi).find(|&j| free[j] < bound);
                assert_eq!(
                    idx.first_free_below_in(lo, hi, bound),
                    linear_below,
                    "step {step} n={n} lo={lo} hi={hi} bound={bound} free={free:?}"
                );
                let linear_min = (lo..hi)
                    .filter(|&j| free[j].is_finite())
                    .min_by(|&a, &b| free[a].partial_cmp(&free[b]).unwrap());
                assert_eq!(
                    idx.min_free_server_in(lo, hi),
                    linear_min,
                    "step {step} n={n} lo={lo} hi={hi} free={free:?}"
                );
            }
        }
    }

    #[test]
    fn class_affinity_prefers_then_spills() {
        // Two groups of 2: class 0 -> group 0, class 1 -> group 1.
        let mut d = ClassAffinity::new(&[2, 2], vec![0, 1], 1.0);
        let tagged = |class: u16, arrival: f64| Job {
            id: sleepscale_sim::pack_id(0, ClassId(class)),
            arrival,
            size: 0.1,
        };
        // Preferred group has headroom: lowest under-threshold index wins.
        assert_eq!(d.route(&tagged(0, 0.0), &index(&[0.2, 0.0, 0.0, 0.0])), 0);
        assert_eq!(d.route(&tagged(1, 0.0), &index(&[0.0, 0.0, 0.2, 0.0])), 2);
        // Preferred group saturated: spill to the lowest-indexed
        // under-threshold server fleet-wide.
        assert_eq!(d.route(&tagged(1, 0.0), &index(&[0.3, 0.0, 2.0, 1.5])), 0);
        // Everything saturated: fleet-wide shortest backlog.
        assert_eq!(d.route(&tagged(0, 0.0), &index(&[3.0, 2.0, 1.5, 2.5])), 2);
        // Classes beyond the table reuse its last entry.
        assert_eq!(d.route(&tagged(9, 0.0), &index(&[0.0, 0.0, 0.0, 0.0])), 2);
    }

    #[test]
    fn class_affinity_route_active_uses_group_prefixes() {
        let mut d = ClassAffinity::new(&[2, 2], vec![0, 1], 1.0);
        // Group 1's second server (slot 3) is parked: its active prefix
        // is just slot 2, so a saturated slot 2 spills to group 0 even
        // though slot 3 looks idle in the full-range view.
        let mut idx = index(&[0.5, 0.0, 2.0, 0.0]);
        idx.set_unavailable(3);
        let slots = [0usize, 1, 2];
        let groups = [(0usize, 2usize), (2, 1)];
        let active = ActiveSet::new(&slots, &groups);
        let j = Job { id: sleepscale_sim::pack_id(0, ClassId(1)), arrival: 0.0, size: 0.1 };
        assert_eq!(d.route_active(&j, &idx, &active), 0);
    }

    #[test]
    fn positional_dispatchers_draw_from_the_active_set() {
        let mut idx = index(&[0.0, 0.0, 0.0, 0.0]);
        idx.set_unavailable(2);
        let slots = [0usize, 1, 3];
        let groups = [(0usize, 4usize)];
        let active = ActiveSet::new(&slots, &groups);
        let j = job(0.0);
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..6).map(|_| rr.route_active(&j, &idx, &active)).collect();
        assert_eq!(picks, vec![0, 1, 3, 0, 1, 3]);
        let mut rnd = RandomUniform::new(5);
        for _ in 0..64 {
            assert!(slots.contains(&rnd.route_active(&j, &idx, &active)));
        }
        let mut split = SplitUniform::new(9);
        for seq in 0..64u64 {
            let j = Job { id: seq, arrival: 0.0, size: 0.1 };
            let pick = split.route_active(&j, &idx, &active);
            assert_eq!(pick, slots[split.split().lane_of(&j, slots.len())]);
        }
    }

    #[test]
    fn tree_matches_linear_scan_on_a_random_walk() {
        let mut rng = StdRng::seed_from_u64(99);
        for &n in &[1usize, 2, 3, 7, 8, 13, 64] {
            let mut idx = DispatchIndex::new(n);
            let mut free = vec![0.0f64; n];
            let mut now = 0.0;
            for _ in 0..400 {
                now += rng.gen_range(0.0..1.0);
                let tree_pick = idx.shortest_backlog_server(now);
                let linear_pick = linear_shortest_backlog(&free, now);
                assert_eq!(tree_pick, linear_pick, "n={n} now={now} free={free:?}");
                let commit = rng.gen_range(0.0..3.0);
                free[tree_pick] = free[tree_pick].max(now) + commit;
                idx.update(tree_pick, free[tree_pick]);
            }
        }
    }
}
