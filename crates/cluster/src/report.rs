use serde::{Deserialize, Serialize};
use sleepscale_dist::StreamingSummary;
use sleepscale_power::{ep, EnergyProportionality, PowerSample};

/// One server's aggregate over a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSummary {
    /// Server index (the dispatch index).
    pub index: usize,
    /// Index of the [`ServerGroup`](crate::ServerGroup) this server
    /// belongs to (see [`ClusterReport::group_names`]).
    pub group: usize,
    /// Jobs this server completed.
    pub jobs: usize,
    /// Mean response of its jobs, seconds (0 when it served none).
    pub mean_response: f64,
    /// Its average power over the horizon, watts.
    pub avg_power: f64,
    /// Its total energy, joules.
    pub energy_joules: f64,
    /// The slice of [`ServerSummary::energy_joules`] spent serving
    /// jobs, exactly attributed by its engine's ledger.
    pub active_energy_joules: f64,
    /// Its energy-proportionality summary over per-bucket samples
    /// (`None` when undefined — e.g. a server that never served).
    pub ep: Option<EnergyProportionality>,
}

impl ServerSummary {
    /// Idle-side energy (idle, sleep, and wake-up intervals): always
    /// `total − active`, so the two line items reproduce the total.
    pub fn idle_energy_joules(&self) -> f64 {
        self.energy_joules - self.active_energy_joules
    }
}

/// One server group's aggregate over a cluster run (all the group's
/// servers folded together).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// The group's display name.
    pub name: String,
    /// Servers in the group.
    pub servers: usize,
    /// Jobs the group completed.
    pub jobs: usize,
    /// Job-weighted mean response across the group, seconds.
    pub mean_response: f64,
    /// Summed average power across the group's servers, watts.
    pub avg_power: f64,
    /// Total energy across the group, joules.
    pub energy_joules: f64,
    /// Active (serving) energy across the group, joules.
    pub active_energy_joules: f64,
    /// The group's energy-proportionality summary, computed over
    /// bucket samples merged across the group's servers (`None` when
    /// undefined).
    pub ep: Option<EnergyProportionality>,
}

impl GroupSummary {
    /// Idle-side energy across the group: `total − active`.
    pub fn idle_energy_joules(&self) -> f64 {
        self.energy_joules - self.active_energy_joules
    }
}

/// Fleet-level result of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    dispatcher: String,
    group_names: Vec<String>,
    servers: Vec<ServerSummary>,
    responses: StreamingSummary,
    class_responses: Vec<StreamingSummary>,
    horizon_seconds: f64,
    mean_service: f64,
    class_active_energy: Vec<f64>,
    power_samples: Vec<PowerSample>,
    group_power_samples: Vec<Vec<PowerSample>>,
    parked_server_seconds: f64,
    fleet_size_trace: Vec<usize>,
}

impl ClusterReport {
    pub(crate) fn new(
        dispatcher: String,
        group_names: Vec<String>,
        servers: Vec<ServerSummary>,
        responses: StreamingSummary,
        class_responses: Vec<StreamingSummary>,
        horizon_seconds: f64,
        mean_service: f64,
    ) -> ClusterReport {
        ClusterReport {
            dispatcher,
            group_names,
            servers,
            responses,
            class_responses,
            horizon_seconds,
            mean_service,
            class_active_energy: Vec::new(),
            power_samples: Vec::new(),
            group_power_samples: Vec::new(),
            parked_server_seconds: 0.0,
            fleet_size_trace: Vec::new(),
        }
    }

    /// Attaches the autoscaler's run aggregates: accumulated parked
    /// `server × seconds` and the fleet-wide active count per epoch.
    pub(crate) fn with_autoscale(
        mut self,
        parked_server_seconds: f64,
        fleet_size_trace: Vec<usize>,
    ) -> ClusterReport {
        self.parked_server_seconds = parked_server_seconds;
        self.fleet_size_trace = fleet_size_trace;
        self
    }

    /// Attaches the fleet's exact energy split: per-class active energy
    /// (merged elementwise across servers in the deterministic
    /// summary pass) plus fleet- and group-level utilization→power
    /// samples.
    pub(crate) fn with_energy_split(
        mut self,
        class_active_energy: Vec<f64>,
        power_samples: Vec<PowerSample>,
        group_power_samples: Vec<Vec<PowerSample>>,
    ) -> ClusterReport {
        self.class_active_energy = class_active_energy;
        self.power_samples = power_samples;
        self.group_power_samples = group_power_samples;
        self
    }

    /// The dispatcher used.
    pub fn dispatcher(&self) -> &str {
        &self.dispatcher
    }

    /// Per-server summaries, by index.
    pub fn servers(&self) -> &[ServerSummary] {
        &self.servers
    }

    /// The fleet's group names, in group order ([`ServerSummary::group`]
    /// indexes into this).
    pub fn group_names(&self) -> &[String] {
        &self.group_names
    }

    /// Per-group aggregates, in group order.
    pub fn group_summaries(&self) -> Vec<GroupSummary> {
        self.group_names
            .iter()
            .enumerate()
            .map(|(g, name)| {
                let members = self.servers.iter().filter(|s| s.group == g);
                let mut summary = GroupSummary {
                    name: name.clone(),
                    servers: 0,
                    jobs: 0,
                    mean_response: 0.0,
                    avg_power: 0.0,
                    energy_joules: 0.0,
                    active_energy_joules: 0.0,
                    ep: self.group_power_samples.get(g).and_then(|s| ep::analyze(s)),
                };
                for s in members {
                    summary.servers += 1;
                    summary.jobs += s.jobs;
                    summary.mean_response += s.mean_response * s.jobs as f64;
                    summary.avg_power += s.avg_power;
                    summary.energy_joules += s.energy_joules;
                    summary.active_energy_joules += s.active_energy_joules;
                }
                if summary.jobs > 0 {
                    summary.mean_response /= summary.jobs as f64;
                }
                summary
            })
            .collect()
    }

    /// Fleet size.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Jobs completed across the fleet.
    pub fn total_jobs(&self) -> usize {
        self.responses.count() as usize
    }

    /// The streaming fleet-wide response summary (exact count/mean,
    /// sketched quantiles).
    pub fn responses(&self) -> &StreamingSummary {
        &self.responses
    }

    /// Per-traffic-class response summaries, indexed by
    /// [`ClassId`](sleepscale_sim::ClassId) — **empty for untagged
    /// fleets** (per-class accounting only arms on multi-class
    /// streams; a single-class stream's "class 0" slice *is*
    /// [`ClusterReport::responses`], and leaving it empty keeps
    /// single-class tagged runs byte-identical to untagged ones).
    pub fn class_responses(&self) -> &[StreamingSummary] {
        &self.class_responses
    }

    /// Job-weighted mean response across the fleet, seconds.
    pub fn mean_response_seconds(&self) -> f64 {
        self.responses.mean()
    }

    /// Normalized mean response `µ·E[R]`.
    pub fn normalized_mean_response(&self) -> f64 {
        self.responses.mean() / self.mean_service
    }

    /// 95th-percentile response across the fleet, seconds (sketched to
    /// ±0.5% relative).
    pub fn p95_response_seconds(&self) -> f64 {
        self.responses.p95()
    }

    /// Total fleet power (sum over servers), watts.
    pub fn total_power_watts(&self) -> f64 {
        self.servers.iter().map(|s| s.avg_power).sum()
    }

    /// Total fleet energy, joules.
    pub fn total_energy_joules(&self) -> f64 {
        self.servers.iter().map(|s| s.energy_joules).sum()
    }

    /// Fleet-wide active (serving) energy, joules.
    pub fn active_energy_joules(&self) -> f64 {
        self.servers.iter().map(|s| s.active_energy_joules).sum()
    }

    /// Fleet-wide idle-side energy (idle, sleep, wake-up), joules.
    pub fn idle_energy_joules(&self) -> f64 {
        self.servers.iter().map(|s| s.idle_energy_joules()).sum()
    }

    /// Fleet-wide per-class active energy in joules, indexed by class
    /// tag — the exact attribution the scenario layer reports. Merged
    /// elementwise across servers in the deterministic summary pass,
    /// so the bytes are thread-count invariant. Always populated (a
    /// one-entry vector for untagged fleets).
    pub fn class_active_energy(&self) -> &[f64] {
        &self.class_active_energy
    }

    /// Fleet-level `(utilization, power)` samples, one per ledger
    /// bucket: utilization is busy-seconds summed over servers divided
    /// by fleet capacity, power is the fleet's summed bucket power.
    pub fn power_samples(&self) -> &[PowerSample] {
        &self.power_samples
    }

    /// Group-level `(utilization, power)` samples for group `g`
    /// (empty for an out-of-range index).
    pub fn group_power_samples(&self, g: usize) -> &[PowerSample] {
        self.group_power_samples.get(g).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Fleet-level energy-proportionality summary (`None` when
    /// undefined).
    pub fn energy_proportionality(&self) -> Option<EnergyProportionality> {
        ep::analyze(&self.power_samples)
    }

    /// The fleet's utilization→power curve, binned into `bins`
    /// fixed-width utilization bins.
    pub fn utilization_power_curve(&self, bins: usize) -> Vec<PowerSample> {
        ep::utilization_power_curve(&self.power_samples, bins)
    }

    /// The run's horizon, seconds.
    pub fn horizon_seconds(&self) -> f64 {
        self.horizon_seconds
    }

    /// Accumulated parked capacity over the run: `server × seconds`
    /// spent parked by the autoscaler (0 for runs without one).
    pub fn parked_server_seconds(&self) -> f64 {
        self.parked_server_seconds
    }

    /// The autoscaler's fleet-size trace: the fleet-wide active server
    /// count during each epoch, in epoch order (empty for runs without
    /// an autoscaler).
    pub fn fleet_size_trace(&self) -> &[usize] {
        &self.fleet_size_trace
    }

    /// Jain's fairness index of per-server job counts (1 = perfectly
    /// even spreading; → 1/N for full packing onto one server).
    pub fn load_balance_index(&self) -> f64 {
        let n = self.servers.len() as f64;
        let sum: f64 = self.servers.iter().map(|s| s.jobs as f64).sum();
        let sum_sq: f64 = self.servers.iter().map(|s| (s.jobs as f64).powi(2)).sum();
        if sum_sq == 0.0 {
            1.0
        } else {
            sum * sum / (n * sum_sq)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(index: usize, group: usize, jobs: usize, power: f64) -> ServerSummary {
        ServerSummary {
            index,
            group,
            jobs,
            mean_response: 0.2,
            avg_power: power,
            energy_joules: power * 100.0,
            active_energy_joules: power * 60.0,
            ep: None,
        }
    }

    fn responses(count: usize, value: f64) -> StreamingSummary {
        let mut s = StreamingSummary::new();
        for _ in 0..count {
            s.push(value);
        }
        s
    }

    #[test]
    fn totals_sum_over_servers() {
        let r = ClusterReport::new(
            "rr".into(),
            vec!["fleet".into()],
            vec![server(0, 0, 10, 100.0), server(1, 0, 10, 50.0)],
            responses(20, 0.2),
            Vec::new(),
            100.0,
            0.194,
        );
        assert_eq!(r.total_power_watts(), 150.0);
        assert_eq!(r.total_energy_joules(), 15_000.0);
        assert_eq!(r.n_servers(), 2);
        assert_eq!(r.total_jobs(), 20);
        assert!((r.normalized_mean_response() - 0.2 / 0.194).abs() < 1e-9);
        // The active/idle line items partition the fleet total.
        assert_eq!(r.active_energy_joules(), 9_000.0);
        assert_eq!(r.idle_energy_joules(), 6_000.0);
        assert!(
            (r.active_energy_joules() + r.idle_energy_joules() - r.total_energy_joules()).abs()
                < 1e-9
        );
    }

    #[test]
    fn energy_split_threads_through_groups() {
        let samples = vec![
            PowerSample { utilization: 0.2, watts: 100.0 },
            PowerSample { utilization: 0.8, watts: 220.0 },
        ];
        let r = ClusterReport::new(
            "rr".into(),
            vec!["fleet".into()],
            vec![server(0, 0, 10, 100.0), server(1, 0, 10, 50.0)],
            responses(20, 0.2),
            Vec::new(),
            100.0,
            0.194,
        )
        .with_energy_split(vec![7_000.0, 2_000.0], samples.clone(), vec![samples.clone()]);
        assert_eq!(r.class_active_energy(), [7_000.0, 2_000.0]);
        let by_class: f64 = r.class_active_energy().iter().sum();
        assert!((by_class - r.active_energy_joules()).abs() < 1e-9);
        assert_eq!(r.power_samples(), samples.as_slice());
        assert_eq!(r.group_power_samples(0), samples.as_slice());
        assert!(r.group_power_samples(9).is_empty());
        let fleet_ep = r.energy_proportionality().unwrap();
        assert_eq!(fleet_ep.peak_watts, 220.0);
        let groups = r.group_summaries();
        assert_eq!(groups[0].ep, Some(fleet_ep), "one group == the fleet");
        assert_eq!(groups[0].active_energy_joules, 9_000.0);
        assert_eq!(groups[0].idle_energy_joules(), 6_000.0);
        assert_eq!(r.utilization_power_curve(5).len(), 2);
    }

    #[test]
    fn group_summaries_partition_the_fleet() {
        let r = ClusterReport::new(
            "rr".into(),
            vec!["xeon".into(), "atom".into()],
            vec![server(0, 0, 10, 100.0), server(1, 0, 30, 90.0), server(2, 1, 20, 40.0)],
            responses(60, 0.2),
            Vec::new(),
            100.0,
            0.194,
        );
        let groups = r.group_summaries();
        assert_eq!(groups.len(), 2);
        assert_eq!((groups[0].name.as_str(), groups[0].servers, groups[0].jobs), ("xeon", 2, 40));
        assert_eq!((groups[1].name.as_str(), groups[1].servers, groups[1].jobs), ("atom", 1, 20));
        assert_eq!(groups[0].avg_power, 190.0);
        assert!((groups[0].mean_response - 0.2).abs() < 1e-12);
        assert_eq!(groups.iter().map(|g| g.jobs).sum::<usize>(), r.total_jobs());
    }

    #[test]
    fn fairness_index() {
        let even = ClusterReport::new(
            "rr".into(),
            vec!["fleet".into()],
            vec![server(0, 0, 10, 1.0), server(1, 0, 10, 1.0)],
            responses(20, 0.1),
            Vec::new(),
            1.0,
            0.1,
        );
        assert!((even.load_balance_index() - 1.0).abs() < 1e-12);
        let packed = ClusterReport::new(
            "pack".into(),
            vec!["fleet".into()],
            vec![server(0, 0, 20, 1.0), server(1, 0, 0, 1.0)],
            responses(20, 0.1),
            Vec::new(),
            1.0,
            0.1,
        );
        assert!((packed.load_balance_index() - 0.5).abs() < 1e-12);
    }
}
