use serde::{Deserialize, Serialize};

/// One server's aggregate over a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSummary {
    /// Server index.
    pub index: usize,
    /// Jobs this server completed.
    pub jobs: usize,
    /// Mean response of its jobs, seconds (0 when it served none).
    pub mean_response: f64,
    /// Its average power over the horizon, watts.
    pub avg_power: f64,
    /// Its total energy, joules.
    pub energy_joules: f64,
}

/// Fleet-level result of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    dispatcher: String,
    servers: Vec<ServerSummary>,
    total_jobs: usize,
    mean_response: f64,
    p95_response: f64,
    horizon_seconds: f64,
    mean_service: f64,
}

impl ClusterReport {
    pub(crate) fn new(
        dispatcher: String,
        servers: Vec<ServerSummary>,
        total_jobs: usize,
        mean_response: f64,
        p95_response: f64,
        horizon_seconds: f64,
        mean_service: f64,
    ) -> ClusterReport {
        ClusterReport {
            dispatcher,
            servers,
            total_jobs,
            mean_response,
            p95_response,
            horizon_seconds,
            mean_service,
        }
    }

    /// The dispatcher used.
    pub fn dispatcher(&self) -> &str {
        &self.dispatcher
    }

    /// Per-server summaries, by index.
    pub fn servers(&self) -> &[ServerSummary] {
        &self.servers
    }

    /// Fleet size.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Jobs completed across the fleet.
    pub fn total_jobs(&self) -> usize {
        self.total_jobs
    }

    /// Job-weighted mean response across the fleet, seconds.
    pub fn mean_response_seconds(&self) -> f64 {
        self.mean_response
    }

    /// Normalized mean response `µ·E[R]`.
    pub fn normalized_mean_response(&self) -> f64 {
        self.mean_response / self.mean_service
    }

    /// 95th-percentile response across the fleet, seconds.
    pub fn p95_response_seconds(&self) -> f64 {
        self.p95_response
    }

    /// Total fleet power (sum over servers), watts.
    pub fn total_power_watts(&self) -> f64 {
        self.servers.iter().map(|s| s.avg_power).sum()
    }

    /// Total fleet energy, joules.
    pub fn total_energy_joules(&self) -> f64 {
        self.servers.iter().map(|s| s.energy_joules).sum()
    }

    /// The run's horizon, seconds.
    pub fn horizon_seconds(&self) -> f64 {
        self.horizon_seconds
    }

    /// Jain's fairness index of per-server job counts (1 = perfectly
    /// even spreading; → 1/N for full packing onto one server).
    pub fn load_balance_index(&self) -> f64 {
        let n = self.servers.len() as f64;
        let sum: f64 = self.servers.iter().map(|s| s.jobs as f64).sum();
        let sum_sq: f64 = self.servers.iter().map(|s| (s.jobs as f64).powi(2)).sum();
        if sum_sq == 0.0 {
            1.0
        } else {
            sum * sum / (n * sum_sq)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(index: usize, jobs: usize, power: f64) -> ServerSummary {
        ServerSummary {
            index,
            jobs,
            mean_response: 0.2,
            avg_power: power,
            energy_joules: power * 100.0,
        }
    }

    #[test]
    fn totals_sum_over_servers() {
        let r = ClusterReport::new(
            "rr".into(),
            vec![server(0, 10, 100.0), server(1, 10, 50.0)],
            20,
            0.2,
            0.5,
            100.0,
            0.194,
        );
        assert_eq!(r.total_power_watts(), 150.0);
        assert_eq!(r.total_energy_joules(), 15_000.0);
        assert_eq!(r.n_servers(), 2);
        assert!((r.normalized_mean_response() - 0.2 / 0.194).abs() < 1e-12);
    }

    #[test]
    fn fairness_index() {
        let even = ClusterReport::new(
            "rr".into(),
            vec![server(0, 10, 1.0), server(1, 10, 1.0)],
            20,
            0.1,
            0.1,
            1.0,
            0.1,
        );
        assert!((even.load_balance_index() - 1.0).abs() < 1e-12);
        let packed = ClusterReport::new(
            "pack".into(),
            vec![server(0, 20, 1.0), server(1, 0, 1.0)],
            20,
            0.1,
            0.1,
            1.0,
            0.1,
        );
        assert!((packed.load_balance_index() - 0.5).abs() < 1e-12);
    }
}
