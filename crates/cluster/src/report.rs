use serde::{Deserialize, Serialize};
use sleepscale_dist::StreamingSummary;

/// One server's aggregate over a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSummary {
    /// Server index (the dispatch index).
    pub index: usize,
    /// Index of the [`ServerGroup`](crate::ServerGroup) this server
    /// belongs to (see [`ClusterReport::group_names`]).
    pub group: usize,
    /// Jobs this server completed.
    pub jobs: usize,
    /// Mean response of its jobs, seconds (0 when it served none).
    pub mean_response: f64,
    /// Its average power over the horizon, watts.
    pub avg_power: f64,
    /// Its total energy, joules.
    pub energy_joules: f64,
}

/// One server group's aggregate over a cluster run (all the group's
/// servers folded together).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// The group's display name.
    pub name: String,
    /// Servers in the group.
    pub servers: usize,
    /// Jobs the group completed.
    pub jobs: usize,
    /// Job-weighted mean response across the group, seconds.
    pub mean_response: f64,
    /// Summed average power across the group's servers, watts.
    pub avg_power: f64,
    /// Total energy across the group, joules.
    pub energy_joules: f64,
}

/// Fleet-level result of a cluster run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    dispatcher: String,
    group_names: Vec<String>,
    servers: Vec<ServerSummary>,
    responses: StreamingSummary,
    class_responses: Vec<StreamingSummary>,
    horizon_seconds: f64,
    mean_service: f64,
}

impl ClusterReport {
    pub(crate) fn new(
        dispatcher: String,
        group_names: Vec<String>,
        servers: Vec<ServerSummary>,
        responses: StreamingSummary,
        class_responses: Vec<StreamingSummary>,
        horizon_seconds: f64,
        mean_service: f64,
    ) -> ClusterReport {
        ClusterReport {
            dispatcher,
            group_names,
            servers,
            responses,
            class_responses,
            horizon_seconds,
            mean_service,
        }
    }

    /// The dispatcher used.
    pub fn dispatcher(&self) -> &str {
        &self.dispatcher
    }

    /// Per-server summaries, by index.
    pub fn servers(&self) -> &[ServerSummary] {
        &self.servers
    }

    /// The fleet's group names, in group order ([`ServerSummary::group`]
    /// indexes into this).
    pub fn group_names(&self) -> &[String] {
        &self.group_names
    }

    /// Per-group aggregates, in group order.
    pub fn group_summaries(&self) -> Vec<GroupSummary> {
        self.group_names
            .iter()
            .enumerate()
            .map(|(g, name)| {
                let members = self.servers.iter().filter(|s| s.group == g);
                let mut summary = GroupSummary {
                    name: name.clone(),
                    servers: 0,
                    jobs: 0,
                    mean_response: 0.0,
                    avg_power: 0.0,
                    energy_joules: 0.0,
                };
                for s in members {
                    summary.servers += 1;
                    summary.jobs += s.jobs;
                    summary.mean_response += s.mean_response * s.jobs as f64;
                    summary.avg_power += s.avg_power;
                    summary.energy_joules += s.energy_joules;
                }
                if summary.jobs > 0 {
                    summary.mean_response /= summary.jobs as f64;
                }
                summary
            })
            .collect()
    }

    /// Fleet size.
    pub fn n_servers(&self) -> usize {
        self.servers.len()
    }

    /// Jobs completed across the fleet.
    pub fn total_jobs(&self) -> usize {
        self.responses.count() as usize
    }

    /// The streaming fleet-wide response summary (exact count/mean,
    /// sketched quantiles).
    pub fn responses(&self) -> &StreamingSummary {
        &self.responses
    }

    /// Per-traffic-class response summaries, indexed by
    /// [`ClassId`](sleepscale_sim::ClassId) — **empty for untagged
    /// fleets** (per-class accounting only arms on multi-class
    /// streams; a single-class stream's "class 0" slice *is*
    /// [`ClusterReport::responses`], and leaving it empty keeps
    /// single-class tagged runs byte-identical to untagged ones).
    pub fn class_responses(&self) -> &[StreamingSummary] {
        &self.class_responses
    }

    /// Job-weighted mean response across the fleet, seconds.
    pub fn mean_response_seconds(&self) -> f64 {
        self.responses.mean()
    }

    /// Normalized mean response `µ·E[R]`.
    pub fn normalized_mean_response(&self) -> f64 {
        self.responses.mean() / self.mean_service
    }

    /// 95th-percentile response across the fleet, seconds (sketched to
    /// ±0.5% relative).
    pub fn p95_response_seconds(&self) -> f64 {
        self.responses.p95()
    }

    /// Total fleet power (sum over servers), watts.
    pub fn total_power_watts(&self) -> f64 {
        self.servers.iter().map(|s| s.avg_power).sum()
    }

    /// Total fleet energy, joules.
    pub fn total_energy_joules(&self) -> f64 {
        self.servers.iter().map(|s| s.energy_joules).sum()
    }

    /// The run's horizon, seconds.
    pub fn horizon_seconds(&self) -> f64 {
        self.horizon_seconds
    }

    /// Jain's fairness index of per-server job counts (1 = perfectly
    /// even spreading; → 1/N for full packing onto one server).
    pub fn load_balance_index(&self) -> f64 {
        let n = self.servers.len() as f64;
        let sum: f64 = self.servers.iter().map(|s| s.jobs as f64).sum();
        let sum_sq: f64 = self.servers.iter().map(|s| (s.jobs as f64).powi(2)).sum();
        if sum_sq == 0.0 {
            1.0
        } else {
            sum * sum / (n * sum_sq)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(index: usize, group: usize, jobs: usize, power: f64) -> ServerSummary {
        ServerSummary {
            index,
            group,
            jobs,
            mean_response: 0.2,
            avg_power: power,
            energy_joules: power * 100.0,
        }
    }

    fn responses(count: usize, value: f64) -> StreamingSummary {
        let mut s = StreamingSummary::new();
        for _ in 0..count {
            s.push(value);
        }
        s
    }

    #[test]
    fn totals_sum_over_servers() {
        let r = ClusterReport::new(
            "rr".into(),
            vec!["fleet".into()],
            vec![server(0, 0, 10, 100.0), server(1, 0, 10, 50.0)],
            responses(20, 0.2),
            Vec::new(),
            100.0,
            0.194,
        );
        assert_eq!(r.total_power_watts(), 150.0);
        assert_eq!(r.total_energy_joules(), 15_000.0);
        assert_eq!(r.n_servers(), 2);
        assert_eq!(r.total_jobs(), 20);
        assert!((r.normalized_mean_response() - 0.2 / 0.194).abs() < 1e-9);
    }

    #[test]
    fn group_summaries_partition_the_fleet() {
        let r = ClusterReport::new(
            "rr".into(),
            vec!["xeon".into(), "atom".into()],
            vec![server(0, 0, 10, 100.0), server(1, 0, 30, 90.0), server(2, 1, 20, 40.0)],
            responses(60, 0.2),
            Vec::new(),
            100.0,
            0.194,
        );
        let groups = r.group_summaries();
        assert_eq!(groups.len(), 2);
        assert_eq!((groups[0].name.as_str(), groups[0].servers, groups[0].jobs), ("xeon", 2, 40));
        assert_eq!((groups[1].name.as_str(), groups[1].servers, groups[1].jobs), ("atom", 1, 20));
        assert_eq!(groups[0].avg_power, 190.0);
        assert!((groups[0].mean_response - 0.2).abs() < 1e-12);
        assert_eq!(groups.iter().map(|g| g.jobs).sum::<usize>(), r.total_jobs());
    }

    #[test]
    fn fairness_index() {
        let even = ClusterReport::new(
            "rr".into(),
            vec!["fleet".into()],
            vec![server(0, 0, 10, 1.0), server(1, 0, 10, 1.0)],
            responses(20, 0.1),
            Vec::new(),
            1.0,
            0.1,
        );
        assert!((even.load_balance_index() - 1.0).abs() < 1e-12);
        let packed = ClusterReport::new(
            "pack".into(),
            vec!["fleet".into()],
            vec![server(0, 0, 20, 1.0), server(1, 0, 0, 1.0)],
            responses(20, 0.1),
            Vec::new(),
            1.0,
            0.1,
        );
        assert!((packed.load_balance_index() - 0.5).abs() < 1e-12);
    }
}
