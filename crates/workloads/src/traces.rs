//! Synthetic minute-granularity utilization traces with Figure 7's
//! features (see DESIGN.md for the substitution rationale).
//!
//! * **File server**: low utilization (~0.02–0.2), gentle diurnal
//!   pattern, minute-scale noise.
//! * **Email store**: wide range (~0.1–0.9), strong working-hours
//!   diurnal pattern, plus abrupt surges from 8 PM to 2 AM modelling the
//!   nightly backup/maintenance jobs the paper describes.
//!
//! Traces start at midnight (minute 0 = 12 AM), matching the paper's
//! figures, and are deterministic given a seed.

use crate::error::WorkloadError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Minutes per day.
pub const MINUTES_PER_DAY: usize = 24 * 60;

/// A minute-granularity utilization series in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationTrace {
    name: String,
    values: Vec<f64>,
}

impl UtilizationTrace {
    /// Wraps raw per-minute utilizations.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidTrace`] if any value falls outside
    /// `[0, 1]` or is non-finite, or the series is empty.
    pub fn new(
        name: impl Into<String>,
        values: Vec<f64>,
    ) -> Result<UtilizationTrace, WorkloadError> {
        if values.is_empty() {
            return Err(WorkloadError::InvalidTrace { reason: "empty trace".into() });
        }
        for (i, v) in values.iter().enumerate() {
            if !v.is_finite() || !(0.0..=1.0).contains(v) {
                return Err(WorkloadError::InvalidTrace {
                    reason: format!("minute {i}: utilization {v} outside [0, 1]"),
                });
            }
        }
        Ok(UtilizationTrace { name: name.into(), values })
    }

    /// A constant-utilization trace (the Section 4 idealized studies).
    ///
    /// # Errors
    ///
    /// Same as [`UtilizationTrace::new`].
    pub fn constant(rho: f64, minutes: usize) -> Result<UtilizationTrace, WorkloadError> {
        UtilizationTrace::new(format!("constant {rho}"), vec![rho; minutes.max(1)])
    }

    /// Trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Utilization at minute `m` (clamped to the last minute past the
    /// end).
    pub fn at(&self, minute: usize) -> f64 {
        let idx = minute.min(self.values.len() - 1);
        self.values[idx]
    }

    /// All per-minute values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of minutes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false — constructors reject empty traces.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Mean utilization.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Smallest value.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest value.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// The sub-trace covering minutes `[start, end)` — e.g. the paper's
    /// 2 AM–8 PM evaluation window is `window(120, 1200)` on day one.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or `end` exceeds the trace length.
    pub fn window(&self, start: usize, end: usize) -> UtilizationTrace {
        assert!(start < end && end <= self.values.len(), "invalid window [{start}, {end})");
        UtilizationTrace {
            name: format!("{}[{start}..{end}]", self.name),
            values: self.values[start..end].to_vec(),
        }
    }
}

/// Smoothly varying diurnal base: a raised sinusoid peaking mid-afternoon
/// (14:30) with AR(1) noise, clamped to `[floor, ceil]`.
fn diurnal_with_noise(
    name: &str,
    days: usize,
    seed: u64,
    floor: f64,
    ceil: f64,
    noise_sd: f64,
    ar_coeff: f64,
) -> UtilizationTrace {
    let mut rng = StdRng::seed_from_u64(seed);
    let total = days.max(1) * MINUTES_PER_DAY;
    let mut values = Vec::with_capacity(total);
    let mid = (floor + ceil) / 2.0;
    let amp = (ceil - floor) / 2.0;
    let mut noise = 0.0_f64;
    for m in 0..total {
        let minute_of_day = (m % MINUTES_PER_DAY) as f64;
        // Peak at 14:30 (minute 870).
        let phase = (minute_of_day - 870.0) / MINUTES_PER_DAY as f64 * std::f64::consts::TAU;
        let base = mid + amp * phase.cos();
        // AR(1) noise: Box–Muller standard normal.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        noise = ar_coeff * noise + noise_sd * z;
        values.push((base + noise).clamp(0.005, 0.99));
    }
    UtilizationTrace { name: name.to_string(), values }
}

/// The file-server-like trace: low utilization, gentle diurnal swing.
pub fn file_server(days: usize, seed: u64) -> UtilizationTrace {
    diurnal_with_noise("file server", days, seed, 0.02, 0.15, 0.01, 0.7)
}

/// The email-store-like trace: wide diurnal swing (≈0.1–0.75 during the
/// day), minute-scale noise, abrupt 8 PM–2 AM backup/maintenance surges
/// to ≈0.9, and occasional working-hours flash crowds (5–25-minute
/// plateaus) that punish predictors which smooth over sudden changes.
pub fn email_store(days: usize, seed: u64) -> UtilizationTrace {
    let mut trace = diurnal_with_noise("email store", days, seed, 0.1, 0.7, 0.035, 0.6);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_beef);
    let total = trace.values.len();
    for m in 0..total {
        let minute_of_day = m % MINUTES_PER_DAY;
        let in_backup_window = !(2 * 60..20 * 60).contains(&minute_of_day);
        if in_backup_window {
            // Square-wave surges: bursts of 10–40 minutes near 0.9
            // separated by quieter gaps, redrawn per burst.
            let burst_phase = (minute_of_day / 20).is_multiple_of(2);
            let jitter: f64 = rng.gen::<f64>() * 0.08;
            if burst_phase {
                trace.values[m] = (0.88 + jitter).clamp(0.0, 0.95);
            } else {
                trace.values[m] = (0.45 + jitter).clamp(0.0, 0.95);
            }
        }
    }
    // Flash crowds: ~6 abrupt plateaus per day at random daytime
    // minutes. Amplitudes are modest (≤ 0.2): large enough to punish
    // predictors that smooth over level shifts, small enough that the
    // paper's 2 AM–8 PM evaluation regime (no catastrophic surges — the
    // big ones live in the excluded backup window) is preserved.
    for day in 0..days.max(1) {
        for _ in 0..6 {
            let start = day * MINUTES_PER_DAY + 150 + (rng.gen::<f64>() * 1000.0) as usize;
            let len = 5 + (rng.gen::<f64>() * 10.0) as usize;
            let bump = 0.08 + rng.gen::<f64>() * 0.12;
            for m in start..(start + len).min(total) {
                trace.values[m] = (trace.values[m] + bump).clamp(0.0, 0.92);
            }
        }
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_seeded_and_deterministic() {
        assert_eq!(email_store(3, 7), email_store(3, 7));
        assert_ne!(email_store(3, 7), email_store(3, 8));
        assert_eq!(file_server(1, 1).len(), MINUTES_PER_DAY);
    }

    #[test]
    fn file_server_is_low_range() {
        let t = file_server(3, 11);
        assert!(t.max() <= 0.25, "max {}", t.max());
        assert!(t.min() >= 0.0);
        assert!(t.mean() < 0.15);
    }

    #[test]
    fn email_store_is_wide_range_with_surges() {
        let t = email_store(3, 11);
        assert!(t.max() >= 0.85, "backup surges should reach ≈0.9, max {}", t.max());
        assert!(t.min() <= 0.2, "night-time troughs should be low, min {}", t.min());
        // Surge window: 9 PM should sit well above 3 PM only during bursts;
        // check some burst minute (minute_of_day 1210 → burst_phase since
        // 1210/20 = 60 even).
        assert!(t.at(20 * 60 + 10) > 0.8);
    }

    #[test]
    fn diurnal_pattern_repeats_daily() {
        let t = email_store(2, 3);
        // Compare the same daytime hour across days (hourly averages
        // smooth over noise and flash crowds).
        let hour_mean =
            |start: usize| -> f64 { (start..start + 60).map(|m| t.at(m)).sum::<f64>() / 60.0 };
        let m = 14 * 60;
        assert!((hour_mean(m) - hour_mean(m + MINUTES_PER_DAY)).abs() < 0.3);
    }

    #[test]
    fn window_extracts_the_evaluation_period() {
        let t = email_store(1, 5);
        let day = t.window(120, 1200);
        assert_eq!(day.len(), 1080);
        assert_eq!(day.at(0), t.at(120));
    }

    #[test]
    #[should_panic(expected = "invalid window")]
    fn bad_window_panics() {
        file_server(1, 1).window(10, 10);
    }

    #[test]
    fn validation() {
        assert!(UtilizationTrace::new("x", vec![]).is_err());
        assert!(UtilizationTrace::new("x", vec![1.5]).is_err());
        assert!(UtilizationTrace::new("x", vec![-0.1]).is_err());
        assert!(UtilizationTrace::new("x", vec![f64::NAN]).is_err());
        let c = UtilizationTrace::constant(0.3, 10).unwrap();
        assert_eq!(c.len(), 10);
        assert!((c.mean() - 0.3).abs() < 1e-12);
        assert_eq!(c.at(500), 0.3); // clamped read past the end
    }
}
