//! Workload substrate for the SleepScale reproduction: Table-5 workload
//! statistics, a BigHouse-substitute distribution store, synthetic
//! utilization traces (Figure 7), job-stream replay (Section 6), and the
//! runtime's job logs (Section 5.2.1).
//!
//! # BigHouse substitution
//!
//! The paper draws inter-arrival and service distributions from the
//! BigHouse simulator's stored live-trace statistics, of which Table 5
//! publishes the mean and coefficient of variation. We cannot obtain the
//! original histograms, so [`bighouse`] *synthesizes* empirical CDF
//! tables from moment-matched families and replays them exactly like
//! BigHouse replays its histograms (see DESIGN.md for why this preserves
//! the evaluation's behaviour).
//!
//! # Trace substitution
//!
//! Figure 7's 3-day departmental utilization traces (file server, email
//! store) are likewise unavailable; [`traces`] synthesizes seeded
//! minute-granularity traces with the same qualitative features: diurnal
//! periodicity, minute-scale noise, the file server's low dynamic range,
//! and the email store's wide range with abrupt 8 PM–2 AM backup surges.
//!
//! # Example
//!
//! ```
//! use sleepscale_workloads::prelude::*;
//! let spec = WorkloadSpec::google();
//! assert_eq!(spec.name(), "Google");
//! let trace = traces::email_store(3, 7);
//! assert_eq!(trace.len(), 3 * 24 * 60);
//! let day = trace.window(2 * 60, 20 * 60); // the paper's 2 AM–8 PM window
//! assert_eq!(day.len(), 18 * 60);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bighouse;
mod error;
mod logs;
mod replay;
mod spec;
pub mod traces;

pub use bighouse::WorkloadDistributions;
pub use error::WorkloadError;
pub use logs::JobLog;
pub use replay::{replay_trace, ReplayConfig};
pub use spec::WorkloadSpec;
pub use traces::UtilizationTrace;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::bighouse;
    pub use crate::traces;
    pub use crate::{
        replay_trace, JobLog, ReplayConfig, UtilizationTrace, WorkloadDistributions, WorkloadError,
        WorkloadSpec,
    };
}
