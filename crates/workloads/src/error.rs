use std::error::Error;
use std::fmt;

/// Errors from workload construction and replay.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A workload specification field is out of range.
    InvalidSpec {
        /// Human-readable reason.
        reason: String,
    },
    /// A utilization value outside `[0, 1]` or a malformed trace.
    InvalidTrace {
        /// Human-readable reason.
        reason: String,
    },
    /// Distribution fitting failed.
    Fit(sleepscale_dist::DistError),
    /// Job-stream construction failed.
    Stream(sleepscale_sim::SimError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidSpec { reason } => write!(f, "invalid workload spec: {reason}"),
            WorkloadError::InvalidTrace { reason } => write!(f, "invalid trace: {reason}"),
            WorkloadError::Fit(e) => write!(f, "distribution fit failed: {e}"),
            WorkloadError::Stream(e) => write!(f, "job stream construction failed: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Fit(e) => Some(e),
            WorkloadError::Stream(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sleepscale_dist::DistError> for WorkloadError {
    fn from(e: sleepscale_dist::DistError) -> WorkloadError {
        WorkloadError::Fit(e)
    }
}

impl From<sleepscale_sim::SimError> for WorkloadError {
    fn from(e: sleepscale_sim::SimError) -> WorkloadError {
        WorkloadError::Stream(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = WorkloadError::InvalidSpec { reason: "zero mean".into() };
        assert!(e.to_string().contains("zero mean"));
        let e: WorkloadError = sleepscale_dist::DistError::EmptySample.into();
        assert!(e.source().is_some());
        let e: WorkloadError = sleepscale_sim::SimError::InvalidHorizon { value: -1.0 }.into();
        assert!(e.to_string().contains("job stream"));
    }
}
