//! The runtime's job log (Section 5.2.1): a bounded window of recent
//! arrival/service observations that the policy manager replays instead
//! of building explicit distribution histograms.

use crate::error::WorkloadError;
use serde::{Deserialize, Serialize};
use sleepscale_sim::{JobRecord, JobStream};
use std::collections::VecDeque;

/// A bounded log of `(inter-arrival gap, full-speed size)` observations.
///
/// "The logs we collect detail the arrival and service times of each job
/// … average behavior from the past several epochs will suffice." The
/// log keeps the newest `capacity` observations; the policy manager
/// replays them (rescaled to the predicted utilization) through the
/// simulator to characterize candidate policies.
///
/// ```
/// use sleepscale_workloads::JobLog;
/// let mut log = JobLog::new(4);
/// for (gap, size) in [(1.0, 0.2), (2.0, 0.3), (0.5, 0.1)] {
///     log.push(gap, size);
/// }
/// assert_eq!(log.len(), 3);
/// assert!((log.mean_size() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobLog {
    capacity: usize,
    interarrivals: VecDeque<f64>,
    sizes: VecDeque<f64>,
    last_arrival: Option<f64>,
}

impl JobLog {
    /// A log keeping at most `capacity` observations (clamped to ≥ 1).
    pub fn new(capacity: usize) -> JobLog {
        let capacity = capacity.max(1);
        JobLog {
            capacity,
            interarrivals: VecDeque::with_capacity(capacity),
            sizes: VecDeque::with_capacity(capacity),
            last_arrival: None,
        }
    }

    /// Records one observation directly.
    pub fn push(&mut self, interarrival: f64, size: f64) {
        if !interarrival.is_finite() || interarrival < 0.0 || !size.is_finite() || size <= 0.0 {
            return; // Ignore degenerate observations rather than poison the log.
        }
        if self.interarrivals.len() == self.capacity {
            self.interarrivals.pop_front();
            self.sizes.pop_front();
        }
        self.interarrivals.push_back(interarrival);
        self.sizes.push_back(size);
    }

    /// Ingests an epoch's completed-job records, deriving inter-arrival
    /// gaps from consecutive arrivals (carrying the last arrival across
    /// epochs).
    pub fn extend_from_records(&mut self, records: &[JobRecord]) {
        for r in records {
            let gap = match self.last_arrival {
                Some(prev) => (r.arrival - prev).max(0.0),
                None => 0.0,
            };
            self.last_arrival = Some(r.arrival);
            if gap > 0.0 {
                self.push(gap, r.size);
            }
        }
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when no observations are stored.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Mean logged inter-arrival gap (0 when empty).
    pub fn mean_interarrival(&self) -> f64 {
        if self.interarrivals.is_empty() {
            0.0
        } else {
            self.interarrivals.iter().sum::<f64>() / self.interarrivals.len() as f64
        }
    }

    /// Mean logged full-speed size (0 when empty).
    pub fn mean_size(&self) -> f64 {
        if self.sizes.is_empty() {
            0.0
        } else {
            self.sizes.iter().sum::<f64>() / self.sizes.len() as f64
        }
    }

    /// The utilization implied by the raw log,
    /// `mean_size / mean_interarrival`.
    pub fn implied_utilization(&self) -> f64 {
        let ia = self.mean_interarrival();
        if ia == 0.0 {
            0.0
        } else {
            self.mean_size() / ia
        }
    }

    /// Builds a replay stream of up to `n` jobs whose inter-arrival gaps
    /// are rescaled so the stream's offered utilization equals
    /// `target_rho` (Section 5.2.2's log adjustment). Observations are
    /// cycled if the log holds fewer than `n`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidTrace`] when the log is empty or
    /// `target_rho` is not in `(0, 1)`.
    pub fn replay(&self, n: usize, target_rho: f64) -> Result<JobStream, WorkloadError> {
        if self.is_empty() {
            return Err(WorkloadError::InvalidTrace { reason: "job log is empty".into() });
        }
        if !(target_rho > 0.0 && target_rho < 1.0) {
            return Err(WorkloadError::InvalidTrace {
                reason: format!("target utilization {target_rho} must be in (0, 1)"),
            });
        }
        // Scale against the means of the entries actually replayed:
        // cycling `n` jobs over a shorter log double-weights the early
        // entries, so whole-log means would miss the target.
        let len = self.sizes.len();
        let (mut ia_sum, mut size_sum) = (0.0, 0.0);
        for i in 0..n {
            let idx = i % len;
            ia_sum += self.interarrivals[idx];
            size_sum += self.sizes[idx];
        }
        if ia_sum == 0.0 || size_sum == 0.0 {
            return Err(WorkloadError::InvalidTrace {
                reason: "log has zero implied utilization".into(),
            });
        }
        let replay_implied = size_sum / ia_sum;
        let scale = replay_implied / target_rho;
        let mut t = 0.0;
        let pairs = (0..n).map(|i| {
            let idx = i % len;
            t += self.interarrivals[idx] * scale;
            (t, self.sizes[idx])
        });
        JobStream::from_log(pairs).map_err(WorkloadError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(arrival: f64, size: f64) -> JobRecord {
        JobRecord {
            id: 0,
            arrival,
            start: arrival,
            departure: arrival + size,
            size,
            service: size,
            wake: 0.0,
        }
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = JobLog::new(2);
        log.push(1.0, 0.1);
        log.push(2.0, 0.2);
        log.push(3.0, 0.3);
        assert_eq!(log.len(), 2);
        assert!((log.mean_interarrival() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ignores_degenerate_observations() {
        let mut log = JobLog::new(4);
        log.push(f64::NAN, 0.1);
        log.push(1.0, -0.1);
        log.push(1.0, 0.0);
        assert!(log.is_empty());
    }

    #[test]
    fn extend_from_records_derives_gaps() {
        let mut log = JobLog::new(10);
        log.extend_from_records(&[record(1.0, 0.2), record(2.5, 0.3), record(3.0, 0.1)]);
        // First record sets the clock; two gaps recorded.
        assert_eq!(log.len(), 2);
        assert!((log.mean_interarrival() - 1.0).abs() < 1e-12);
        // Next epoch carries the last arrival.
        log.extend_from_records(&[record(4.0, 0.2)]);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn replay_hits_target_utilization() {
        let mut log = JobLog::new(100);
        for i in 0..50 {
            log.push(1.0 + 0.01 * (i % 5) as f64, 0.2);
        }
        let stream = log.replay(500, 0.5).unwrap();
        assert_eq!(stream.len(), 500);
        assert!((stream.offered_utilization() - 0.5).abs() < 0.02);
        let stream = log.replay(500, 0.1).unwrap();
        assert!((stream.offered_utilization() - 0.1).abs() < 0.01);
    }

    #[test]
    fn replay_cycles_short_logs() {
        let mut log = JobLog::new(4);
        log.push(1.0, 0.3);
        let stream = log.replay(10, 0.3).unwrap();
        assert_eq!(stream.len(), 10);
        assert!((stream.mean_size() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn replay_validation() {
        let log = JobLog::new(4);
        assert!(log.replay(10, 0.5).is_err());
        let mut log = JobLog::new(4);
        log.push(1.0, 0.2);
        assert!(log.replay(10, 0.0).is_err());
        assert!(log.replay(10, 1.0).is_err());
    }
}
