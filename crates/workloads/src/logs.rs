//! The runtime's job log (Section 5.2.1): a bounded window of recent
//! arrival/service observations that the policy manager replays instead
//! of building explicit distribution histograms.

use crate::error::WorkloadError;
use serde::{Deserialize, Serialize};
use sleepscale_sim::{ClassId, JobRecord, JobStream};
use std::collections::VecDeque;

/// A bounded log of `(inter-arrival gap, full-speed size)` observations.
///
/// "The logs we collect detail the arrival and service times of each job
/// … average behavior from the past several epochs will suffice." The
/// log keeps the newest `capacity` observations; the policy manager
/// replays them (rescaled to the predicted utilization) through the
/// simulator to characterize candidate policies.
///
/// ```
/// use sleepscale_workloads::JobLog;
/// let mut log = JobLog::new(4);
/// for (gap, size) in [(1.0, 0.2), (2.0, 0.3), (0.5, 0.1)] {
///     log.push(gap, size);
/// }
/// assert_eq!(log.len(), 3);
/// assert!((log.mean_size() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobLog {
    capacity: usize,
    interarrivals: VecDeque<f64>,
    sizes: VecDeque<f64>,
    classes: VecDeque<u16>,
    last_arrival: Option<f64>,
}

impl JobLog {
    /// A log keeping at most `capacity` observations (clamped to ≥ 1).
    pub fn new(capacity: usize) -> JobLog {
        let capacity = capacity.max(1);
        JobLog {
            capacity,
            interarrivals: VecDeque::with_capacity(capacity),
            sizes: VecDeque::with_capacity(capacity),
            classes: VecDeque::with_capacity(capacity),
            last_arrival: None,
        }
    }

    /// Records one observation directly (default traffic class).
    pub fn push(&mut self, interarrival: f64, size: f64) {
        self.push_tagged(interarrival, size, ClassId::DEFAULT);
    }

    /// Records one class-tagged observation. The tag rides along so a
    /// replay of a mixed log preserves each job's population identity
    /// (sizes are stored per job, so the replay was already
    /// per-class-correct at the sample level — the tag keeps *who* each
    /// sample was).
    pub fn push_tagged(&mut self, interarrival: f64, size: f64, class: ClassId) {
        if !interarrival.is_finite() || interarrival < 0.0 || !size.is_finite() || size <= 0.0 {
            return; // Ignore degenerate observations rather than poison the log.
        }
        if self.interarrivals.len() == self.capacity {
            self.interarrivals.pop_front();
            self.sizes.pop_front();
            self.classes.pop_front();
        }
        self.interarrivals.push_back(interarrival);
        self.sizes.push_back(size);
        self.classes.push_back(class.0);
    }

    /// Ingests an epoch's completed-job records, deriving inter-arrival
    /// gaps from consecutive arrivals (carrying the last arrival across
    /// epochs). Class tags are taken from the records' ids.
    pub fn extend_from_records(&mut self, records: &[JobRecord]) {
        for r in records {
            let gap = match self.last_arrival {
                Some(prev) => (r.arrival - prev).max(0.0),
                None => 0.0,
            };
            self.last_arrival = Some(r.arrival);
            if gap > 0.0 {
                self.push_tagged(gap, r.size, r.class());
            }
        }
    }

    /// Number of stored observations.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when no observations are stored.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Mean logged inter-arrival gap (0 when empty).
    pub fn mean_interarrival(&self) -> f64 {
        if self.interarrivals.is_empty() {
            0.0
        } else {
            self.interarrivals.iter().sum::<f64>() / self.interarrivals.len() as f64
        }
    }

    /// Mean logged full-speed size (0 when empty).
    pub fn mean_size(&self) -> f64 {
        if self.sizes.is_empty() {
            0.0
        } else {
            self.sizes.iter().sum::<f64>() / self.sizes.len() as f64
        }
    }

    /// The utilization implied by the raw log,
    /// `mean_size / mean_interarrival`.
    pub fn implied_utilization(&self) -> f64 {
        let ia = self.mean_interarrival();
        if ia == 0.0 {
            0.0
        } else {
            self.mean_size() / ia
        }
    }

    /// Builds a replay stream of up to `n` jobs whose inter-arrival gaps
    /// are rescaled so the stream's offered utilization equals
    /// `target_rho` (Section 5.2.2's log adjustment). Observations are
    /// cycled if the log holds fewer than `n`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidTrace`] when the log is empty or
    /// `target_rho` is not in `(0, 1)`.
    pub fn replay(&self, n: usize, target_rho: f64) -> Result<JobStream, WorkloadError> {
        let mut stream = JobStream::default();
        self.replay_into(n, target_rho, &mut stream)?;
        Ok(stream)
    }

    /// [`JobLog::replay`] into a caller-owned stream, reusing its
    /// allocation — the policy manager replays the log every epoch, so
    /// a single long-lived buffer replaces one `Vec` allocation per
    /// selection.
    ///
    /// # Errors
    ///
    /// Same as [`JobLog::replay`]; on error `out` is left empty.
    pub fn replay_into(
        &self,
        n: usize,
        target_rho: f64,
        out: &mut JobStream,
    ) -> Result<(), WorkloadError> {
        if self.is_empty() {
            return Err(WorkloadError::InvalidTrace { reason: "job log is empty".into() });
        }
        if !(target_rho > 0.0 && target_rho < 1.0) {
            return Err(WorkloadError::InvalidTrace {
                reason: format!("target utilization {target_rho} must be in (0, 1)"),
            });
        }
        // Scale against the means of the entries actually replayed:
        // cycling `n` jobs over a shorter log double-weights the early
        // entries, so whole-log means would miss the target.
        let len = self.sizes.len();
        let (mut ia_sum, mut size_sum) = (0.0, 0.0);
        for i in 0..n {
            let idx = i % len;
            ia_sum += self.interarrivals[idx];
            size_sum += self.sizes[idx];
        }
        if ia_sum == 0.0 || size_sum == 0.0 {
            return Err(WorkloadError::InvalidTrace {
                reason: "log has zero implied utilization".into(),
            });
        }
        let replay_implied = size_sum / ia_sum;
        let scale = replay_implied / target_rho;
        let mut t = 0.0;
        let triples = (0..n).map(|i| {
            let idx = i % len;
            t += self.interarrivals[idx] * scale;
            (t, self.sizes[idx], ClassId(self.classes[idx]))
        });
        // An all-default-class log produces exactly the ids the untagged
        // refill would have assigned, so tagging is invisible to
        // single-population replay.
        out.refill_from_tagged_log(triples).map_err(WorkloadError::from)
    }

    /// A coarse fingerprint of the log's replay-relevant statistics:
    /// the mean full-speed size (~5% relative buckets) and the shape of
    /// both distributions (coefficients of variation, ~25% buckets —
    /// shape drifts far more slowly than sample noise), plus the
    /// occupancy order of magnitude.
    ///
    /// The inter-arrival *level* is deliberately excluded: replay
    /// rescales gaps to the target utilization
    /// ([`JobLog::replay_into`]), so two logs that differ only in
    /// arrival rate produce statistically identical replay streams.
    /// Two logs with equal signatures are therefore interchangeable for
    /// characterization, which is what lets the policy manager's cache
    /// key on this rather than on exact log contents — the ring buffer
    /// shifts every epoch, and homogeneous servers behind a balanced
    /// dispatcher log different jobs, but under the diurnal-similarity
    /// assumption the summary statistics sit in the same buckets for
    /// hours at a time.
    pub fn coarse_signature(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};

        // Relative (geometric) buckets; non-positive maps to a sentinel.
        fn bucket(x: f64, relative: f64) -> i64 {
            if x > 0.0 {
                (x.ln() / relative).round() as i64
            } else {
                i64::MIN
            }
        }
        fn cv(values: &VecDeque<f64>, mean: f64) -> f64 {
            if values.len() < 2 || mean == 0.0 {
                return 0.0;
            }
            let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>()
                / (values.len() - 1) as f64;
            var.sqrt() / mean
        }

        let mean_size = self.mean_size();
        let mut hasher = DefaultHasher::new();
        bucket(mean_size, 0.05).hash(&mut hasher);
        bucket(1.0 + cv(&self.interarrivals, self.mean_interarrival()), 0.25).hash(&mut hasher);
        bucket(1.0 + cv(&self.sizes, mean_size), 0.25).hash(&mut hasher);
        // Occupancy matters only in tiers: replay cycles the log, so
        // 10k vs 11k observations are interchangeable while 10 vs 10k
        // are not. Three tiers (cold / warming / warm) keep the
        // signature from churning every epoch while the ring fills.
        let occupancy_tier: u8 = match self.len() {
            0..=255 => 0,
            256..=4095 => 1,
            _ => 2,
        };
        occupancy_tier.hash(&mut hasher);
        hasher.finish()
    }
}

impl sleepscale_journal::Snapshot for JobLog {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_usize(self.capacity);
        self.interarrivals.snapshot(w);
        self.sizes.snapshot(w);
        self.classes.snapshot(w);
        self.last_arrival.snapshot(w);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<JobLog, sleepscale_journal::CodecError> {
        let capacity = r.get_usize()?.max(1);
        let interarrivals = VecDeque::restore(r)?;
        let sizes: VecDeque<f64> = VecDeque::restore(r)?;
        let classes = VecDeque::restore(r)?;
        if interarrivals.len() != sizes.len()
            || classes.len() != sizes.len()
            || sizes.len() > capacity
        {
            return Err(sleepscale_journal::CodecError::Invalid(
                "job log columns disagree in length".into(),
            ));
        }
        Ok(JobLog { capacity, interarrivals, sizes, classes, last_arrival: Option::restore(r)? })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(arrival: f64, size: f64) -> JobRecord {
        JobRecord {
            id: 0,
            arrival,
            start: arrival,
            departure: arrival + size,
            size,
            service: size,
            wake: 0.0,
        }
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut log = JobLog::new(2);
        log.push(1.0, 0.1);
        log.push(2.0, 0.2);
        log.push(3.0, 0.3);
        assert_eq!(log.len(), 2);
        assert!((log.mean_interarrival() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ignores_degenerate_observations() {
        let mut log = JobLog::new(4);
        log.push(f64::NAN, 0.1);
        log.push(1.0, -0.1);
        log.push(1.0, 0.0);
        assert!(log.is_empty());
    }

    #[test]
    fn extend_from_records_derives_gaps() {
        let mut log = JobLog::new(10);
        log.extend_from_records(&[record(1.0, 0.2), record(2.5, 0.3), record(3.0, 0.1)]);
        // First record sets the clock; two gaps recorded.
        assert_eq!(log.len(), 2);
        assert!((log.mean_interarrival() - 1.0).abs() < 1e-12);
        // Next epoch carries the last arrival.
        log.extend_from_records(&[record(4.0, 0.2)]);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn replay_hits_target_utilization() {
        let mut log = JobLog::new(100);
        for i in 0..50 {
            log.push(1.0 + 0.01 * (i % 5) as f64, 0.2);
        }
        let stream = log.replay(500, 0.5).unwrap();
        assert_eq!(stream.len(), 500);
        assert!((stream.offered_utilization() - 0.5).abs() < 0.02);
        let stream = log.replay(500, 0.1).unwrap();
        assert!((stream.offered_utilization() - 0.1).abs() < 0.01);
    }

    #[test]
    fn replay_cycles_short_logs() {
        let mut log = JobLog::new(4);
        log.push(1.0, 0.3);
        let stream = log.replay(10, 0.3).unwrap();
        assert_eq!(stream.len(), 10);
        assert!((stream.mean_size() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn replay_into_reuses_buffer_and_matches_replay() {
        let mut log = JobLog::new(100);
        for i in 0..60 {
            log.push(0.9 + 0.01 * (i % 7) as f64, 0.15 + 0.01 * (i % 3) as f64);
        }
        let fresh = log.replay(300, 0.4).unwrap();
        let mut reused = JobStream::default();
        log.replay_into(300, 0.4, &mut reused).unwrap();
        assert_eq!(reused, fresh);
        // Refill with a different target reuses the same stream object.
        log.replay_into(300, 0.2, &mut reused).unwrap();
        assert!((reused.offered_utilization() - 0.2).abs() < 0.02);
    }

    #[test]
    fn coarse_signature_is_stable_under_content_churn() {
        let mut a = JobLog::new(64);
        let mut b = JobLog::new(64);
        for i in 0..64 {
            a.push(1.0 + 0.001 * (i % 5) as f64, 0.2);
            // Same distributional shape, different entry order/phase.
            b.push(1.0 + 0.001 * ((i + 3) % 5) as f64, 0.2);
        }
        assert_eq!(a.coarse_signature(), b.coarse_signature());
        // A different arrival *rate* alone does not change the
        // signature — replay rescales it away.
        let mut faster = JobLog::new(64);
        for i in 0..64 {
            faster.push(0.5 + 0.0005 * (i % 5) as f64, 0.2);
        }
        assert_eq!(a.coarse_signature(), faster.coarse_signature());
        // A materially different service size does.
        let mut c = JobLog::new(64);
        for i in 0..64 {
            c.push(1.0 + 0.001 * (i % 5) as f64, 0.4);
        }
        assert_ne!(a.coarse_signature(), c.coarse_signature());
        // Occupancy tier matters, fine count does not.
        let mut d = JobLog::new(8192);
        for i in 0..5000 {
            d.push(1.0 + 0.001 * (i % 5) as f64, 0.2);
        }
        assert_ne!(a.coarse_signature(), d.coarse_signature());
    }

    #[test]
    fn tagged_log_replays_class_identity() {
        let mut log = JobLog::new(16);
        for i in 0..8 {
            let class = if i % 2 == 0 { ClassId(1) } else { ClassId(2) };
            log.push_tagged(1.0, if class == ClassId(1) { 0.3 } else { 0.1 }, class);
        }
        let stream = log.replay(16, 0.2).unwrap();
        assert!(stream.is_tagged());
        for (i, job) in stream.jobs().iter().enumerate() {
            let expect = if i % 2 == 0 { ClassId(1) } else { ClassId(2) };
            assert_eq!(job.class(), expect, "replay cycles tags with the observations");
            assert_eq!(job.sequence(), i as u64);
        }
        // Class tags flow from record ids into the log.
        let mut from_records = JobLog::new(8);
        let mut r1 = record(1.0, 0.2);
        r1.id = sleepscale_sim::pack_id(0, ClassId(3));
        let mut r2 = record(2.0, 0.2);
        r2.id = sleepscale_sim::pack_id(1, ClassId(5));
        from_records.extend_from_records(&[r1, r2]);
        assert_eq!(from_records.len(), 1); // first record only sets the clock
        let replayed = from_records.replay(2, 0.1).unwrap();
        assert!(replayed.jobs().iter().all(|j| j.class() == ClassId(5)));
    }

    #[test]
    fn untagged_log_replay_is_byte_identical_to_before_tags() {
        // `push` (untagged) must produce replay streams whose ids are
        // plain sequence numbers — the characterization hot path sees
        // the exact bytes it saw before class tags existed.
        let mut log = JobLog::new(32);
        for i in 0..20 {
            log.push(1.0 + 0.01 * (i % 5) as f64, 0.2);
        }
        let stream = log.replay(50, 0.4).unwrap();
        assert!(!stream.is_tagged());
        assert!(stream.jobs().iter().enumerate().all(|(i, j)| j.id == i as u64));
    }

    #[test]
    fn replay_validation() {
        let log = JobLog::new(4);
        assert!(log.replay(10, 0.5).is_err());
        let mut log = JobLog::new(4);
        log.push(1.0, 0.2);
        assert!(log.replay(10, 0.0).is_err());
        assert!(log.replay(10, 1.0).is_err());
    }
}
