//! Trace-driven job-stream synthesis — the Section 6 evaluation input.
//!
//! "We first generate sequences of jobs by sampling the inter-arrival time
//! and service time CDFs from BigHouse … we then scale the inter-arrival
//! time between generated jobs to match the time-varying utilization."
//! Service times are stationary; only arrival spacing follows the trace.

use crate::bighouse::WorkloadDistributions;
use crate::error::WorkloadError;
use crate::traces::UtilizationTrace;
use rand::RngCore;
use serde::{Deserialize, Serialize};
use sleepscale_sim::{Job, JobStream};

/// Controls for [`replay_trace`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// Seconds represented by one trace sample (60 for minute traces).
    pub seconds_per_sample: f64,
    /// Utilizations below this produce no arrivals for that sample
    /// (avoids unbounded inter-arrival scaling).
    pub min_utilization: f64,
    /// Arrival-rate multiplier: a fleet of `N` servers offered
    /// cluster-wide utilization `ρ(t)` (as a fraction of *total* fleet
    /// capacity) receives `N·ρ(t)·µ` arrivals per second. The timeline
    /// is untouched — only arrivals densify.
    pub rate_multiplier: f64,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig { seconds_per_sample: 60.0, min_utilization: 1e-4, rate_multiplier: 1.0 }
    }
}

impl ReplayConfig {
    /// The default configuration with the arrival rate multiplied by
    /// `n` — the cluster-wide stream for an `n`-server fleet.
    pub fn for_fleet(n: usize) -> ReplayConfig {
        ReplayConfig { rate_multiplier: n.max(1) as f64, ..ReplayConfig::default() }
    }
}

/// Builds the ground-truth job stream for a utilization trace.
///
/// For each trace sample with utilization `ρ(m)`, arrivals are generated
/// by drawing from the workload's inter-arrival distribution and scaling
/// the draw so the sample's mean inter-arrival equals
/// `service_mean / ρ(m)` (i.e. arrival rate `ρ(m)·µ`). Sizes come from
/// the stationary service distribution, at the full-speed scale.
///
/// # Errors
///
/// Returns [`WorkloadError::Stream`] if stream assembly fails (it cannot,
/// barring distribution bugs — samples are validated).
pub fn replay_trace(
    trace: &UtilizationTrace,
    dists: &WorkloadDistributions,
    config: &ReplayConfig,
    rng: &mut dyn RngCore,
) -> Result<JobStream, WorkloadError> {
    let spec = dists.spec();
    let ia = dists.interarrival();
    let sv = dists.service();
    let ia_mean = ia.mean();
    let sv_scale = spec.service_mean() / sv.mean().max(1e-300);

    let mut jobs = Vec::new();
    let mut id = 0u64;
    let mut t = 0.0_f64;
    for (m, &rho) in trace.values().iter().enumerate() {
        let sample_start = m as f64 * config.seconds_per_sample;
        let sample_end = sample_start + config.seconds_per_sample;
        if rho < config.min_utilization {
            // No arrivals this sample; restart the arrival clock at the
            // next sample boundary if it fell behind.
            t = t.max(sample_end);
            continue;
        }
        let target_ia = spec.service_mean() / (rho * config.rate_multiplier.max(1e-9));
        let scale = target_ia / ia_mean;
        if t < sample_start {
            t = sample_start;
        }
        loop {
            let gap = ia.sample(rng) * scale;
            let next = t + gap;
            if next >= sample_end {
                // The gap crosses into the next sample: carry the clock
                // forward so bursts don't pile up at boundaries.
                t = next;
                break;
            }
            t = next;
            jobs.push(Job { id, arrival: t, size: sv.sample(rng) * sv_scale });
            id += 1;
        }
    }
    JobStream::new(jobs).map_err(WorkloadError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use crate::traces;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dns_empirical(seed: u64) -> WorkloadDistributions {
        let mut rng = StdRng::seed_from_u64(seed);
        WorkloadDistributions::empirical(&WorkloadSpec::dns(), 10_000, &mut rng).unwrap()
    }

    #[test]
    fn constant_trace_hits_target_utilization() {
        let trace = UtilizationTrace::constant(0.3, 240).unwrap(); // 4 hours
        let dists = dns_empirical(1);
        let mut rng = StdRng::seed_from_u64(2);
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
        // Offered utilization = total work / horizon.
        let horizon = 240.0 * 60.0;
        let work: f64 = jobs.jobs().iter().map(|j| j.size).sum();
        let rho = work / horizon;
        assert!((rho - 0.3).abs() < 0.03, "measured ρ = {rho}");
    }

    #[test]
    fn utilization_scaling_tracks_the_trace() {
        // First hour at 0.1, second hour at 0.6: arrival counts scale ~6x.
        let mut values = vec![0.1; 60];
        values.extend(vec![0.6; 60]);
        let trace = UtilizationTrace::new("step", values).unwrap();
        let dists = dns_empirical(3);
        let mut rng = StdRng::seed_from_u64(4);
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
        let (lo, hi) = jobs.split_at_time(3600.0);
        let ratio = hi.len() as f64 / lo.len().max(1) as f64;
        assert!((ratio - 6.0).abs() < 1.5, "ratio {ratio}");
    }

    #[test]
    fn zero_utilization_minutes_have_no_arrivals() {
        let mut values = vec![0.0; 30];
        values.extend(vec![0.4; 30]);
        let trace = UtilizationTrace::new("quiet", values).unwrap();
        let dists = dns_empirical(5);
        let mut rng = StdRng::seed_from_u64(6);
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
        assert!(jobs.jobs().iter().all(|j| j.arrival >= 30.0 * 60.0));
        assert!(!jobs.is_empty());
    }

    #[test]
    fn arrivals_are_sorted_and_sizes_positive() {
        let trace = traces::email_store(1, 9).window(120, 240);
        let dists = dns_empirical(7);
        let mut rng = StdRng::seed_from_u64(8);
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
        let mut prev = 0.0;
        for j in jobs.jobs() {
            assert!(j.arrival >= prev);
            assert!(j.size > 0.0);
            prev = j.arrival;
        }
    }

    #[test]
    fn service_sizes_are_stationary_across_utilization() {
        let mut values = vec![0.1; 120];
        values.extend(vec![0.8; 120]);
        let trace = UtilizationTrace::new("ramp", values).unwrap();
        let dists = dns_empirical(11);
        let mut rng = StdRng::seed_from_u64(12);
        let jobs = replay_trace(&trace, &dists, &ReplayConfig::default(), &mut rng).unwrap();
        let (lo, hi) = jobs.split_at_time(120.0 * 60.0);
        assert!((lo.mean_size() - hi.mean_size()).abs() / lo.mean_size() < 0.25);
    }
}
