use crate::error::WorkloadError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A workload's summary statistics — one row of Table 5: inter-arrival
/// and service time (mean, Cv) pairs.
///
/// The mean inter-arrival here describes the workload at its *reference*
/// utilization `ρ_ref = service_mean / interarrival_mean`; replay rescales
/// inter-arrivals to follow a time-varying utilization trace.
///
/// ```
/// use sleepscale_workloads::WorkloadSpec;
/// let dns = WorkloadSpec::dns();
/// assert_eq!(dns.service_mean(), 0.194);
/// assert!((dns.mu() - 1.0 / 0.194).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    name: String,
    interarrival_mean: f64,
    interarrival_cv: f64,
    service_mean: f64,
    service_cv: f64,
}

impl WorkloadSpec {
    /// Builds a custom spec.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] for non-positive means or
    /// negative Cvs.
    pub fn new(
        name: impl Into<String>,
        interarrival_mean: f64,
        interarrival_cv: f64,
        service_mean: f64,
        service_cv: f64,
    ) -> Result<WorkloadSpec, WorkloadError> {
        for (label, v) in [("interarrival mean", interarrival_mean), ("service mean", service_mean)]
        {
            if !v.is_finite() || v <= 0.0 {
                return Err(WorkloadError::InvalidSpec {
                    reason: format!("{label} {v} must be finite and > 0"),
                });
            }
        }
        for (label, v) in [("interarrival cv", interarrival_cv), ("service cv", service_cv)] {
            if !v.is_finite() || v < 0.0 {
                return Err(WorkloadError::InvalidSpec {
                    reason: format!("{label} {v} must be finite and >= 0"),
                });
            }
        }
        Ok(WorkloadSpec {
            name: name.into(),
            interarrival_mean,
            interarrival_cv,
            service_mean,
            service_cv,
        })
    }

    /// Table 5, DNS row: inter-arrival 1.1 s (Cv 1.1), service 194 ms
    /// (Cv 1.0).
    pub fn dns() -> WorkloadSpec {
        WorkloadSpec::new("DNS", 1.1, 1.1, 0.194, 1.0).expect("table 5 row is valid")
    }

    /// Table 5, Mail row: inter-arrival 206 ms (Cv 1.9), service 92 ms
    /// (Cv 3.6).
    pub fn mail() -> WorkloadSpec {
        WorkloadSpec::new("Mail", 0.206, 1.9, 0.092, 3.6).expect("table 5 row is valid")
    }

    /// Table 5, Google row: inter-arrival 319 µs (Cv 1.2), service 4.2 ms
    /// (Cv 1.1).
    pub fn google() -> WorkloadSpec {
        WorkloadSpec::new("Google", 319e-6, 1.2, 4.2e-3, 1.1).expect("table 5 row is valid")
    }

    /// The three Table-5 rows this reproduction ships.
    pub fn table5() -> Vec<WorkloadSpec> {
        vec![WorkloadSpec::dns(), WorkloadSpec::mail(), WorkloadSpec::google()]
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Mean inter-arrival time in seconds at the reference utilization.
    pub fn interarrival_mean(&self) -> f64 {
        self.interarrival_mean
    }

    /// Inter-arrival coefficient of variation.
    pub fn interarrival_cv(&self) -> f64 {
        self.interarrival_cv
    }

    /// Mean full-speed service time `1/µ` in seconds.
    pub fn service_mean(&self) -> f64 {
        self.service_mean
    }

    /// Service-time coefficient of variation.
    pub fn service_cv(&self) -> f64 {
        self.service_cv
    }

    /// Full-speed service rate `µ`.
    pub fn mu(&self) -> f64 {
        1.0 / self.service_mean
    }

    /// The utilization implied by the Table-5 means,
    /// `ρ_ref = λ_ref / µ = service_mean / interarrival_mean`.
    pub fn reference_utilization(&self) -> f64 {
        self.service_mean / self.interarrival_mean
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: interarrival {:.6} s (Cv {:.2}), service {:.6} s (Cv {:.2})",
            self.name,
            self.interarrival_mean,
            self.interarrival_cv,
            self.service_mean,
            self.service_cv
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_rows_match_paper() {
        let dns = WorkloadSpec::dns();
        assert_eq!((dns.interarrival_mean(), dns.interarrival_cv()), (1.1, 1.1));
        assert_eq!((dns.service_mean(), dns.service_cv()), (0.194, 1.0));
        let mail = WorkloadSpec::mail();
        assert_eq!((mail.interarrival_mean(), mail.interarrival_cv()), (0.206, 1.9));
        assert_eq!((mail.service_mean(), mail.service_cv()), (0.092, 3.6));
        let google = WorkloadSpec::google();
        assert_eq!((google.interarrival_mean(), google.interarrival_cv()), (319e-6, 1.2));
        assert_eq!((google.service_mean(), google.service_cv()), (4.2e-3, 1.1));
        assert_eq!(WorkloadSpec::table5().len(), 3);
    }

    #[test]
    fn reference_utilization() {
        // Google implies a heavily loaded reference point.
        let g = WorkloadSpec::google();
        assert!((g.reference_utilization() - 4.2e-3 / 319e-6).abs() < 1e-9);
        let d = WorkloadSpec::dns();
        assert!((d.reference_utilization() - 0.194 / 1.1).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(WorkloadSpec::new("x", 0.0, 1.0, 1.0, 1.0).is_err());
        assert!(WorkloadSpec::new("x", 1.0, -1.0, 1.0, 1.0).is_err());
        assert!(WorkloadSpec::new("x", 1.0, 1.0, f64::NAN, 1.0).is_err());
    }

    #[test]
    fn display_contains_name() {
        assert!(WorkloadSpec::dns().to_string().starts_with("DNS"));
    }
}
