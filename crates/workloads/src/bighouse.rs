//! The BigHouse substitute: frozen empirical CDF tables moment-matched to
//! Table 5.
//!
//! BigHouse \[26\] stores inter-arrival/service observations harvested from
//! live traces and replays them by empirical-CDF sampling. We synthesize
//! equivalent tables: fit a parametric family to each (mean, Cv) row,
//! freeze `n` draws into an [`Empirical`] table, and sample that table
//! from then on. The paper's idealized-vs-empirical comparison (Figure 6
//! solid vs dashed) stays meaningful because the frozen tables are not
//! exponential whenever `Cv ≠ 1`.

use crate::error::WorkloadError;
use crate::spec::WorkloadSpec;
use rand::RngCore;
use sleepscale_dist::{fit, DynDistribution, Empirical, Exponential};
use std::sync::Arc;

/// Default number of observations frozen into each empirical table.
pub const DEFAULT_TABLE_SIZE: usize = 20_000;

/// A workload's sampling interface: paired inter-arrival and service
/// distributions plus the spec they were built from.
#[derive(Debug, Clone)]
pub struct WorkloadDistributions {
    spec: WorkloadSpec,
    interarrival: DynDistribution,
    service: DynDistribution,
}

impl WorkloadDistributions {
    /// BigHouse-style *empirical* distributions: moment-fit each Table-5
    /// row, then freeze `table_size` draws into an ECDF table.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Fit`] when the spec's moments cannot be
    /// fitted.
    pub fn empirical(
        spec: &WorkloadSpec,
        table_size: usize,
        rng: &mut dyn RngCore,
    ) -> Result<WorkloadDistributions, WorkloadError> {
        let ia_family = fit::by_moments(spec.interarrival_mean(), spec.interarrival_cv())?;
        let sv_family = fit::by_moments(spec.service_mean(), spec.service_cv())?;
        let interarrival = Arc::new(Empirical::from_distribution(&*ia_family, table_size, rng)?);
        let service = Arc::new(Empirical::from_distribution(&*sv_family, table_size, rng)?);
        Ok(WorkloadDistributions { spec: spec.clone(), interarrival, service })
    }

    /// The paper's *idealized* model of the same workload: Poisson
    /// arrivals and exponential service with the same means (Cv forced
    /// to 1). This is what Figure 6's solid curves use.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Fit`] for invalid means.
    pub fn idealized(spec: &WorkloadSpec) -> Result<WorkloadDistributions, WorkloadError> {
        let interarrival = Arc::new(Exponential::from_mean(spec.interarrival_mean())?);
        let service = Arc::new(Exponential::from_mean(spec.service_mean())?);
        Ok(WorkloadDistributions { spec: spec.clone(), interarrival, service })
    }

    /// Direct parametric sampling (no frozen table): the fitted families
    /// themselves. Useful for sensitivity studies on table size.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Fit`] when the spec's moments cannot be
    /// fitted.
    pub fn parametric(spec: &WorkloadSpec) -> Result<WorkloadDistributions, WorkloadError> {
        let interarrival = fit::by_moments(spec.interarrival_mean(), spec.interarrival_cv())?;
        let service = fit::by_moments(spec.service_mean(), spec.service_cv())?;
        Ok(WorkloadDistributions { spec: spec.clone(), interarrival, service })
    }

    /// The originating spec.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Inter-arrival distribution.
    pub fn interarrival(&self) -> &DynDistribution {
        &self.interarrival
    }

    /// Service-time distribution.
    pub fn service(&self) -> &DynDistribution {
        &self.service
    }
}

/// Verifies a pair of distributions against a spec within relative
/// tolerance — used by tests and the Table-5 harness to show the
/// generators deliver the published moments.
pub fn moments_match(dists: &WorkloadDistributions, rel_tol: f64) -> bool {
    let s = dists.spec();
    let ia = dists.interarrival();
    let sv = dists.service();
    let close = |a: f64, b: f64| (a - b).abs() / b.max(1e-12) < rel_tol;
    close(ia.mean(), s.interarrival_mean()) && close(sv.mean(), s.service_mean())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empirical_tables_match_table5_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        for spec in WorkloadSpec::table5() {
            let d = WorkloadDistributions::empirical(&spec, DEFAULT_TABLE_SIZE, &mut rng).unwrap();
            assert!(moments_match(&d, 0.08), "{}: means drifted", spec.name());
            // Cv should also be in the neighbourhood (Mail's 3.6 needs slack).
            let cv_tol = 0.25;
            assert!(
                (d.interarrival().cv() - spec.interarrival_cv()).abs() / spec.interarrival_cv()
                    < cv_tol,
                "{}: interarrival cv {} vs {}",
                spec.name(),
                d.interarrival().cv(),
                spec.interarrival_cv()
            );
            assert!(
                (d.service().cv() - spec.service_cv()).abs() / spec.service_cv() < cv_tol,
                "{}: service cv {} vs {}",
                spec.name(),
                d.service().cv(),
                spec.service_cv()
            );
            assert_eq!(d.interarrival().name(), "empirical");
        }
    }

    #[test]
    fn idealized_forces_exponential() {
        let d = WorkloadDistributions::idealized(&WorkloadSpec::mail()).unwrap();
        assert_eq!(d.interarrival().name(), "exp");
        assert_eq!(d.service().name(), "exp");
        assert!((d.service().cv() - 1.0).abs() < 1e-12);
        assert!((d.service().mean() - 0.092).abs() < 1e-12);
    }

    #[test]
    fn parametric_families_follow_cv() {
        let d = WorkloadDistributions::parametric(&WorkloadSpec::mail()).unwrap();
        assert_eq!(d.service().name(), "hyperexp2"); // Cv 3.6 > 1
        let dns = WorkloadDistributions::parametric(&WorkloadSpec::dns()).unwrap();
        assert_eq!(dns.service().name(), "exp"); // Cv exactly 1
    }

    #[test]
    fn empirical_differs_from_idealized_when_cv_not_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let spec = WorkloadSpec::mail();
        let emp = WorkloadDistributions::empirical(&spec, 10_000, &mut rng).unwrap();
        // Service Cv 3.6: the frozen table must be visibly non-exponential.
        assert!(emp.service().cv() > 2.0);
    }
}
