use crate::error::AnalyticError;
use serde::{Deserialize, Serialize};

/// M/G/1 with `n` low-power states: the appendix's remark that "both
/// `E[R]` and `E[P]` can be extended to the case where service time is
/// not exponential", made concrete.
///
/// Service is described by its mean `E[S]` and squared coefficient of
/// variation `C_s²`; arrivals stay Poisson. The pieces:
///
/// * setup-delay moments `E[D^α]` depend only on the (exponential) idle
///   period, so they match [`crate::MM1Sleep`] exactly;
/// * the renewal cycle is `L = (1 + λE[D]) / (λ(1 − ρ))` — the busy
///   period of an M/G/1 whose first customer receives exceptional
///   service `D + S` (Welch, 1964);
/// * `E[P]` therefore keeps the appendix's structure with
///   `1/(λL) = (1 − ρ)/(1 + λE[D])`;
/// * `E[R] = E[S] + λE[S²]/(2(1−ρ)) + (2E[D] + λE[D²])/(2(1 + λE[D]))`
///   — Pollaczek–Khinchine plus the paper's setup term.
///
/// With `C_s² = 1` every quantity collapses to [`crate::MM1Sleep`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MG1Sleep {
    lambda: f64,
    service_mean: f64,
    service_scv: f64,
    active_power: f64,
    stages: Vec<(f64, f64, f64)>,
}

impl MG1Sleep {
    /// Builds the model. `service_scv` is the squared coefficient of
    /// variation `C_s²` (1 for exponential, 0 for deterministic).
    ///
    /// # Errors
    ///
    /// * [`AnalyticError::Unstable`] if `λ·E[S] >= 1`.
    /// * [`AnalyticError::InvalidParameter`] for non-positive rates or
    ///   malformed stages.
    pub fn new(
        lambda: f64,
        service_mean: f64,
        service_scv: f64,
        active_power: f64,
        stages: Vec<(f64, f64, f64)>,
    ) -> Result<MG1Sleep, AnalyticError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(AnalyticError::InvalidParameter {
                name: "lambda",
                value: lambda,
                requirement: "finite and > 0",
            });
        }
        if !service_mean.is_finite() || service_mean <= 0.0 {
            return Err(AnalyticError::InvalidParameter {
                name: "service_mean",
                value: service_mean,
                requirement: "finite and > 0",
            });
        }
        if !service_scv.is_finite() || service_scv < 0.0 {
            return Err(AnalyticError::InvalidParameter {
                name: "service_scv",
                value: service_scv,
                requirement: "finite and >= 0",
            });
        }
        if lambda * service_mean >= 1.0 {
            return Err(AnalyticError::Unstable { lambda, mu_eff: 1.0 / service_mean });
        }
        if !active_power.is_finite() || active_power < 0.0 {
            return Err(AnalyticError::InvalidParameter {
                name: "active_power",
                value: active_power,
                requirement: "finite and >= 0",
            });
        }
        let mut prev_tau = -1.0;
        for &(p, tau, w) in &stages {
            if !p.is_finite() || p < 0.0 || !w.is_finite() || w < 0.0 {
                return Err(AnalyticError::InvalidParameter {
                    name: "stage",
                    value: if p < 0.0 { p } else { w },
                    requirement: "finite and >= 0",
                });
            }
            if !tau.is_finite() || tau < 0.0 || tau <= prev_tau {
                return Err(AnalyticError::InvalidParameter {
                    name: "stage entry delay",
                    value: tau,
                    requirement: "finite, >= 0, strictly increasing",
                });
            }
            prev_tau = tau;
        }
        Ok(MG1Sleep { lambda, service_mean, service_scv, active_power, stages })
    }

    /// Utilization `ρ = λ·E[S]`.
    pub fn utilization(&self) -> f64 {
        self.lambda * self.service_mean
    }

    /// `E[D^α]` — identical to the M/M/1 case (idle periods are
    /// exponential regardless of the service law).
    pub fn setup_moment(&self, alpha: f64) -> f64 {
        let lam = self.lambda;
        let n = self.stages.len();
        let mut total = 0.0;
        for (i, &(_, tau, w)) in self.stages.iter().enumerate() {
            let upper = if i + 1 < n { (-lam * self.stages[i + 1].1).exp() } else { 0.0 };
            total += w.powf(alpha) * ((-lam * tau).exp() - upper);
        }
        total
    }

    /// Renewal cycle length `L = (1 + λE[D]) / (λ(1 − ρ))`.
    pub fn cycle_length(&self) -> f64 {
        (1.0 + self.lambda * self.setup_moment(1.0)) / (self.lambda * (1.0 - self.utilization()))
    }

    /// Average power — the appendix formula with the M/G/1 cycle.
    pub fn avg_power(&self) -> f64 {
        let lam = self.lambda;
        let inv_lam_l = 1.0 / (lam * self.cycle_length());
        let n = self.stages.len();
        let mut idle_term = 0.0;
        for (i, &(p, tau, _)) in self.stages.iter().enumerate() {
            let upper = if i + 1 < n { (-lam * self.stages[i + 1].1).exp() } else { 0.0 };
            idle_term += p * ((-lam * tau).exp() - upper);
        }
        let tau1 = self.stages.first().map_or(0.0, |s| s.1);
        let first_exp = if self.stages.is_empty() { 0.0 } else { (-lam * tau1).exp() };
        idle_term * inv_lam_l + self.active_power * (1.0 - first_exp * inv_lam_l)
    }

    /// Mean response time: Pollaczek–Khinchine plus the setup term.
    pub fn mean_response(&self) -> f64 {
        let lam = self.lambda;
        let es = self.service_mean;
        let es2 = es * es * (1.0 + self.service_scv);
        let rho = self.utilization();
        let d1 = self.setup_moment(1.0);
        let d2 = self.setup_moment(2.0);
        es + lam * es2 / (2.0 * (1.0 - rho)) + (2.0 * d1 + lam * d2) / (2.0 * (1.0 + lam * d1))
    }

    /// The stage tuples.
    pub fn stages(&self) -> &[(f64, f64, f64)] {
        &self.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MM1Sleep;

    #[test]
    fn collapses_to_mm1_at_scv_one() {
        let stages = vec![(28.1, 0.0, 1.0)];
        let mm1 = MM1Sleep::new(0.5, 2.0, 250.0, stages.clone()).unwrap();
        let mg1 = MG1Sleep::new(0.5, 0.5, 1.0, 250.0, stages).unwrap();
        assert!((mm1.mean_response() - mg1.mean_response()).abs() < 1e-12);
        assert!((mm1.avg_power() - mg1.avg_power()).abs() < 1e-12);
        assert!((mm1.cycle_length() - mg1.cycle_length()).abs() < 1e-12);
    }

    #[test]
    fn deterministic_service_halves_the_queueing_term() {
        // M/D/1 waits half as long as M/M/1 (PK with E[S²] = E[S]²).
        let md1 = MG1Sleep::new(0.5, 1.0, 0.0, 250.0, vec![]).unwrap();
        let mm1 = MG1Sleep::new(0.5, 1.0, 1.0, 250.0, vec![]).unwrap();
        let wait = |m: &MG1Sleep| m.mean_response() - 1.0;
        assert!((wait(&md1) - wait(&mm1) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_is_insensitive_to_service_variability() {
        // E[P] depends on the busy fraction and idle-period law only.
        let a = MG1Sleep::new(0.4, 1.0, 0.0, 250.0, vec![(28.1, 0.0, 1.0)]).unwrap();
        let b = MG1Sleep::new(0.4, 1.0, 13.0, 250.0, vec![(28.1, 0.0, 1.0)]).unwrap();
        assert!((a.avg_power() - b.avg_power()).abs() < 1e-12);
    }

    #[test]
    fn heavy_tailed_service_inflates_response() {
        // Mail-like Cv = 3.6 → SCV ≈ 13.
        let heavy = MG1Sleep::new(0.5, 1.0, 12.96, 250.0, vec![]).unwrap();
        let light = MG1Sleep::new(0.5, 1.0, 1.0, 250.0, vec![]).unwrap();
        assert!(heavy.mean_response() > 3.0 * light.mean_response());
    }

    #[test]
    fn validation() {
        assert!(MG1Sleep::new(1.0, 1.0, 1.0, 250.0, vec![]).is_err()); // rho = 1
        assert!(MG1Sleep::new(0.5, 0.0, 1.0, 250.0, vec![]).is_err());
        assert!(MG1Sleep::new(0.5, 1.0, -1.0, 250.0, vec![]).is_err());
        assert!(MG1Sleep::new(0.5, 1.0, 1.0, -1.0, vec![]).is_err());
        assert!(MG1Sleep::new(0.5, 1.0, 1.0, 1.0, vec![(1.0, 0.1, 0.0), (1.0, 0.1, 0.0)]).is_err());
    }
}
