use std::error::Error;
use std::fmt;

/// Errors from constructing analytic models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnalyticError {
    /// The queue is unstable: `λ >= µf`.
    Unstable {
        /// Arrival rate.
        lambda: f64,
        /// Effective service rate.
        mu_eff: f64,
    },
    /// A parameter is out of range.
    InvalidParameter {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
        /// What was required.
        requirement: &'static str,
    },
    /// The requested quantity has no closed form for this configuration
    /// (e.g. the response-time tail with multiple or delayed stages).
    NoClosedForm {
        /// What was requested.
        quantity: &'static str,
        /// Why it is unavailable.
        reason: &'static str,
    },
}

impl fmt::Display for AnalyticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyticError::Unstable { lambda, mu_eff } => {
                write!(f, "unstable queue: lambda {lambda} >= effective service rate {mu_eff}")
            }
            AnalyticError::InvalidParameter { name, value, requirement } => {
                write!(f, "parameter {name} = {value} violates requirement: {requirement}")
            }
            AnalyticError::NoClosedForm { quantity, reason } => {
                write!(f, "no closed form for {quantity}: {reason}")
            }
        }
    }
}

impl Error for AnalyticError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(AnalyticError::Unstable { lambda: 2.0, mu_eff: 1.0 }
            .to_string()
            .contains("unstable"));
        assert!(AnalyticError::NoClosedForm { quantity: "tail", reason: "multi-stage" }
            .to_string()
            .contains("tail"));
    }
}
