use crate::error::AnalyticError;
use serde::{Deserialize, Serialize};

/// The appendix's M/M/1 with `n` low-power states.
///
/// Stages are `(P_i, τ_i, w_i)` tuples — power in watts, entry delay and
/// wake latency in seconds — with strictly increasing `τ_i` and `τ_1`
/// arbitrary (idle time before `τ_1` is charged at the active power
/// `P_0`, exactly as the simulator does).
///
/// All formulas are exact for Poisson arrivals and exponential service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MM1Sleep {
    lambda: f64,
    mu_eff: f64,
    active_power: f64,
    stages: Vec<(f64, f64, f64)>,
}

impl MM1Sleep {
    /// Builds the model.
    ///
    /// # Errors
    ///
    /// * [`AnalyticError::Unstable`] if `lambda >= mu_eff`.
    /// * [`AnalyticError::InvalidParameter`] for non-positive rates,
    ///   negative powers/latencies, or non-increasing entry delays.
    pub fn new(
        lambda: f64,
        mu_eff: f64,
        active_power: f64,
        stages: Vec<(f64, f64, f64)>,
    ) -> Result<MM1Sleep, AnalyticError> {
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(AnalyticError::InvalidParameter {
                name: "lambda",
                value: lambda,
                requirement: "finite and > 0",
            });
        }
        if !mu_eff.is_finite() || mu_eff <= 0.0 {
            return Err(AnalyticError::InvalidParameter {
                name: "mu_eff",
                value: mu_eff,
                requirement: "finite and > 0",
            });
        }
        if lambda >= mu_eff {
            return Err(AnalyticError::Unstable { lambda, mu_eff });
        }
        if !active_power.is_finite() || active_power < 0.0 {
            return Err(AnalyticError::InvalidParameter {
                name: "active_power",
                value: active_power,
                requirement: "finite and >= 0",
            });
        }
        let mut prev_tau = -1.0;
        for &(p, tau, w) in &stages {
            if !p.is_finite() || p < 0.0 {
                return Err(AnalyticError::InvalidParameter {
                    name: "stage power",
                    value: p,
                    requirement: "finite and >= 0",
                });
            }
            if !tau.is_finite() || tau < 0.0 || tau <= prev_tau {
                return Err(AnalyticError::InvalidParameter {
                    name: "stage entry delay",
                    value: tau,
                    requirement: "finite, >= 0, strictly increasing",
                });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(AnalyticError::InvalidParameter {
                    name: "stage wake latency",
                    value: w,
                    requirement: "finite and >= 0",
                });
            }
            prev_tau = tau;
        }
        Ok(MM1Sleep { lambda, mu_eff, active_power, stages })
    }

    /// Arrival rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// Effective service rate `µf`.
    pub fn mu_eff(&self) -> f64 {
        self.mu_eff
    }

    /// Utilization at the operating point, `λ/µf`.
    pub fn utilization(&self) -> f64 {
        self.lambda / self.mu_eff
    }

    /// `E[D^α]`: the α-th moment of the setup delay experienced by the
    /// first arrival of a busy cycle. With an exponential idle period
    /// `I ~ Exp(λ)`, the arrival lands in stage `i` with probability
    /// `e^{−λτ_i} − e^{−λτ_{i+1}}` (and the deepest stage with
    /// `e^{−λτ_n}`), paying `w_i^α`; landing before `τ_1` costs nothing.
    pub fn setup_moment(&self, alpha: f64) -> f64 {
        let lam = self.lambda;
        let n = self.stages.len();
        let mut total = 0.0;
        for (i, &(_, tau, w)) in self.stages.iter().enumerate() {
            let upper = if i + 1 < n { (-lam * self.stages[i + 1].1).exp() } else { 0.0 };
            total += w.powf(alpha) * ((-lam * tau).exp() - upper);
        }
        total
    }

    /// The renewal-cycle length `L` (idle period + setup-inflated busy
    /// period):
    /// `L = [µf + µf·λ·E[D]] / (λ(µf − λ))`.
    pub fn cycle_length(&self) -> f64 {
        let (lam, mu) = (self.lambda, self.mu_eff);
        mu * (1.0 + lam * self.setup_moment(1.0)) / (lam * (mu - lam))
    }

    /// Average power `E[P]` (appendix):
    /// the idle interval contributes each stage's power weighted by its
    /// expected residency; everything else — busy, wake-up, and pre-`τ_1`
    /// idle — is charged at `P_0`.
    pub fn avg_power(&self) -> f64 {
        let lam = self.lambda;
        let inv_lam_l = 1.0 / (lam * self.cycle_length());
        let n = self.stages.len();
        let mut idle_term = 0.0;
        for (i, &(p, tau, _)) in self.stages.iter().enumerate() {
            let upper = if i + 1 < n { (-lam * self.stages[i + 1].1).exp() } else { 0.0 };
            idle_term += p * ((-lam * tau).exp() - upper);
        }
        let tau1 = self.stages.first().map_or(0.0, |s| s.1);
        let first_exp = if self.stages.is_empty() { 0.0 } else { (-lam * tau1).exp() };
        idle_term * inv_lam_l + self.active_power * (1.0 - first_exp * inv_lam_l)
    }

    /// Mean response time `E[R]` (appendix):
    /// `1/(µf − λ) + (2E[D] + λE[D²]) / (2(1 + λE[D]))`.
    pub fn mean_response(&self) -> f64 {
        let (lam, mu) = (self.lambda, self.mu_eff);
        let d1 = self.setup_moment(1.0);
        let d2 = self.setup_moment(2.0);
        1.0 / (mu - lam) + (2.0 * d1 + lam * d2) / (2.0 * (1.0 + lam * d1))
    }

    /// Response-time tail `Pr(R ≥ d)` — closed form only for a single
    /// immediate sleep state (`n = 1`, `τ_1 = 0`):
    /// `[e^{−(µf−λ)d} − w1(µf−λ)e^{−d/w1}] / (1 − w1(µf−λ))`,
    /// with the `w1 = 0` and `w1 = 1/(µf−λ)` limits handled.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyticError::NoClosedForm`] for multi-stage or delayed
    /// programs.
    pub fn prob_response_exceeds(&self, d: f64) -> Result<f64, AnalyticError> {
        if d <= 0.0 {
            return Ok(1.0);
        }
        let a = self.mu_eff - self.lambda;
        let w1 = match self.stages.as_slice() {
            [] => 0.0,
            [(_, tau, w)] if *tau == 0.0 => *w,
            _ => {
                return Err(AnalyticError::NoClosedForm {
                    quantity: "Pr(R >= d)",
                    reason: "closed form requires a single immediate sleep state",
                })
            }
        };
        if w1 == 0.0 {
            return Ok((-a * d).exp());
        }
        let denom = 1.0 - w1 * a;
        if denom.abs() < 1e-9 {
            // Degenerate limit w1 → 1/a: Erlang-2 style tail.
            return Ok((1.0 + a * d) * (-a * d).exp());
        }
        Ok(((-a * d).exp() - w1 * a * (-d / w1).exp()) / denom)
    }

    /// The stage tuples.
    pub fn stages(&self) -> &[(f64, f64, f64)] {
        &self.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// n = 1, τ = 0, w = 0 collapses to a plain M/M/1 with idle power P1:
    /// E[P] = ρ_f·P0 + (1−ρ_f)·P1, E[R] = 1/(µf−λ).
    #[test]
    fn collapses_to_mm1_without_setup() {
        let m = MM1Sleep::new(1.0, 4.0, 250.0, vec![(135.5, 0.0, 0.0)]).unwrap();
        let rho = 0.25;
        assert!((m.avg_power() - (rho * 250.0 + (1.0 - rho) * 135.5)).abs() < 1e-9);
        assert!((m.mean_response() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.utilization() - 0.25).abs() < 1e-12);
    }

    /// With no sleep stages everything is charged at active power.
    #[test]
    fn never_sleep_draws_active_power() {
        let m = MM1Sleep::new(1.0, 4.0, 250.0, vec![]).unwrap();
        assert!((m.avg_power() - 250.0).abs() < 1e-9);
        assert!((m.mean_response() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.setup_moment(1.0), 0.0);
    }

    /// Cycle length with setup matches 1/λ + busy-with-setup.
    #[test]
    fn cycle_length_equals_idle_plus_busy() {
        let (lam, mu, w) = (0.515, 2.165, 1.0);
        let m = MM1Sleep::new(lam, mu, 250.0, vec![(28.1, 0.0, w)]).unwrap();
        let idle = 1.0 / lam;
        let busy = (w + 1.0 / mu) / (1.0 - lam / mu);
        assert!((m.cycle_length() - (idle + busy)).abs() < 1e-9);
    }

    /// Single-state E[R] with setup: 1/(µf−λ) + (2w+λw²)/(2(1+λw)).
    #[test]
    fn mean_response_single_state() {
        let (lam, mu, w) = (0.5, 2.0, 1.0);
        let m = MM1Sleep::new(lam, mu, 250.0, vec![(28.1, 0.0, w)]).unwrap();
        let expect = 1.0 / 1.5 + (2.0 + 0.5) / (2.0 * 1.5);
        assert!((m.mean_response() - expect).abs() < 1e-12);
    }

    /// Setup moments weight stages by exponential landing probabilities.
    #[test]
    fn setup_moment_two_stages() {
        let lam = 2.0_f64;
        let tau2 = 0.7;
        let m =
            MM1Sleep::new(lam, 10.0, 250.0, vec![(100.0, 0.0, 0.0), (28.0, tau2, 1.0)]).unwrap();
        // Landing in stage 1: 1 − e^{−λτ2} (w = 0); deeper: e^{−λτ2}·1.
        let expect = (-lam * tau2).exp();
        assert!((m.setup_moment(1.0) - expect).abs() < 1e-12);
        assert!((m.setup_moment(2.0) - expect).abs() < 1e-12);
    }

    /// Delayed single stage: pre-τ1 idle charged at active power. In the
    /// τ1 → ∞ limit, E[P] → the no-sleep value.
    #[test]
    fn large_entry_delay_approaches_never_sleep() {
        let m = MM1Sleep::new(1.0, 4.0, 250.0, vec![(28.1, 1e9, 1.0)]).unwrap();
        assert!((m.avg_power() - 250.0).abs() < 1e-6);
        let never = MM1Sleep::new(1.0, 4.0, 250.0, vec![]).unwrap();
        assert!((m.mean_response() - never.mean_response()).abs() < 1e-6);
    }

    /// τ2 interpolates Figure 3 style: power between immediate-deep and
    /// immediate-shallow.
    #[test]
    fn entry_delay_interpolates_power() {
        let (lam, mu) = (1.0, 4.0);
        let shallow = MM1Sleep::new(lam, mu, 250.0, vec![(135.5, 0.0, 0.0)]).unwrap();
        let deep = MM1Sleep::new(lam, mu, 250.0, vec![(28.1, 0.0, 1.0)]).unwrap();
        let two = MM1Sleep::new(lam, mu, 250.0, vec![(135.5, 0.0, 0.0), (28.1, 1.5, 1.0)]).unwrap();
        let lo = deep.avg_power().min(shallow.avg_power());
        let hi = deep.avg_power().max(shallow.avg_power());
        assert!(two.avg_power() > lo - 1e-9 && two.avg_power() < hi + 1e-9);
    }

    #[test]
    fn tail_limits() {
        let m0 = MM1Sleep::new(1.0, 3.0, 250.0, vec![(135.5, 0.0, 0.0)]).unwrap();
        assert!((m0.prob_response_exceeds(1.0).unwrap() - (-2.0_f64).exp()).abs() < 1e-12);
        assert_eq!(m0.prob_response_exceeds(0.0).unwrap(), 1.0);
        let m1 = MM1Sleep::new(1.0, 3.0, 250.0, vec![(28.1, 0.0, 1.0)]).unwrap();
        let p = m1.prob_response_exceeds(1.0).unwrap();
        assert!(p > (-2.0_f64).exp() && p < 1.0, "setup fattens the tail: {p}");
        // Degenerate w1 = 1/(µf−λ) = 0.5.
        let md = MM1Sleep::new(1.0, 3.0, 250.0, vec![(28.1, 0.0, 0.5)]).unwrap();
        let pd = md.prob_response_exceeds(1.0).unwrap();
        assert!(((1.0 + 2.0) * (-2.0_f64).exp() - pd).abs() < 1e-6);
    }

    #[test]
    fn tail_has_no_closed_form_for_ladders() {
        let m = MM1Sleep::new(1.0, 3.0, 250.0, vec![(135.5, 0.0, 0.0), (28.1, 1.0, 1.0)]).unwrap();
        assert!(matches!(m.prob_response_exceeds(1.0), Err(AnalyticError::NoClosedForm { .. })));
        let delayed = MM1Sleep::new(1.0, 3.0, 250.0, vec![(28.1, 0.5, 1.0)]).unwrap();
        assert!(delayed.prob_response_exceeds(1.0).is_err());
    }

    #[test]
    fn validation() {
        assert!(matches!(
            MM1Sleep::new(2.0, 1.0, 250.0, vec![]),
            Err(AnalyticError::Unstable { .. })
        ));
        assert!(MM1Sleep::new(0.0, 1.0, 250.0, vec![]).is_err());
        assert!(MM1Sleep::new(0.5, 1.0, -1.0, vec![]).is_err());
        assert!(MM1Sleep::new(0.5, 1.0, 1.0, vec![(1.0, 0.5, 0.0), (1.0, 0.5, 0.0)]).is_err());
        assert!(MM1Sleep::new(0.5, 1.0, 1.0, vec![(-1.0, 0.0, 0.0)]).is_err());
        assert!(MM1Sleep::new(0.5, 1.0, 1.0, vec![(1.0, 0.0, -1.0)]).is_err());
    }
}
