use crate::error::AnalyticError;
use crate::model::MM1Sleep;
use serde::{Deserialize, Serialize};
use sleepscale_power::{FrequencyGrid, FrequencyScaling, Policy, SystemPowerModel, Watts};

/// The analytic characterization of one policy: what the idealized model
/// of Section 4 predicts without running a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticOutcome {
    /// Average power `E[P]` in watts.
    pub avg_power: f64,
    /// Mean response time `E[R]` in seconds.
    pub mean_response: f64,
    /// Normalized mean response `µ·E[R]`.
    pub normalized_mean_response: f64,
    /// Renewal cycle length `L` in seconds.
    pub cycle_length: f64,
    /// Mean setup delay `E[D]` in seconds.
    pub setup_mean: f64,
}

/// Bridges workspace types to the appendix formulas: fixes a machine,
/// scaling law, full-speed service rate `µ`, and arrival rate `λ`, then
/// characterizes [`Policy`] values analytically.
///
/// This is the "idealized model" of Figure 6's solid curves: same
/// candidate set as the simulation-driven manager, but scored by closed
/// form instead of by replaying logs.
#[derive(Debug, Clone)]
pub struct PolicyAnalyzer<'a> {
    power: &'a SystemPowerModel,
    scaling: FrequencyScaling,
    mu: f64,
    lambda: f64,
}

impl<'a> PolicyAnalyzer<'a> {
    /// Builds an analyzer.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyticError::InvalidParameter`] for non-positive `mu`
    /// or `lambda`.
    pub fn new(
        power: &'a SystemPowerModel,
        scaling: FrequencyScaling,
        mu: f64,
        lambda: f64,
    ) -> Result<PolicyAnalyzer<'a>, AnalyticError> {
        if !mu.is_finite() || mu <= 0.0 {
            return Err(AnalyticError::InvalidParameter {
                name: "mu",
                value: mu,
                requirement: "finite and > 0",
            });
        }
        if !lambda.is_finite() || lambda <= 0.0 {
            return Err(AnalyticError::InvalidParameter {
                name: "lambda",
                value: lambda,
                requirement: "finite and > 0",
            });
        }
        Ok(PolicyAnalyzer { power, scaling, mu, lambda })
    }

    /// Convenience constructor from utilization: `λ = ρµ`.
    ///
    /// # Errors
    ///
    /// Same as [`PolicyAnalyzer::new`].
    pub fn from_utilization(
        power: &'a SystemPowerModel,
        scaling: FrequencyScaling,
        mu: f64,
        rho: f64,
    ) -> Result<PolicyAnalyzer<'a>, AnalyticError> {
        PolicyAnalyzer::new(power, scaling, mu, rho * mu)
    }

    /// Builds the appendix model for one policy.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyticError::Unstable`] if the policy's frequency
    /// cannot keep up with `λ`.
    pub fn model(&self, policy: &Policy) -> Result<MM1Sleep, AnalyticError> {
        let f = policy.frequency();
        let mu_eff = self.scaling.effective_rate(self.mu, f);
        let active: Watts = self.power.active_power(f);
        let stages = policy
            .program()
            .stages()
            .iter()
            .map(|s| (self.power.power(s.state(), f).as_watts(), s.enter_after(), s.wake_latency()))
            .collect();
        MM1Sleep::new(self.lambda, mu_eff, active.as_watts(), stages)
    }

    /// Characterizes one policy.
    ///
    /// # Errors
    ///
    /// Same as [`PolicyAnalyzer::model`].
    pub fn analyze(&self, policy: &Policy) -> Result<AnalyticOutcome, AnalyticError> {
        let m = self.model(policy)?;
        let mean_response = m.mean_response();
        Ok(AnalyticOutcome {
            avg_power: m.avg_power(),
            mean_response,
            normalized_mean_response: mean_response * self.mu,
            cycle_length: m.cycle_length(),
            setup_mean: m.setup_moment(1.0),
        })
    }

    /// The idealized policy optimizer: over `programs × grid`, the
    /// minimum-power policy whose normalized mean response stays within
    /// `max_normalized_response`. Unstable grid points are skipped.
    /// Returns `None` if nothing is feasible.
    pub fn min_power_policy(
        &self,
        programs: &[sleepscale_power::SleepProgram],
        grid: &FrequencyGrid,
        max_normalized_response: f64,
    ) -> Option<(Policy, AnalyticOutcome)> {
        let mut best: Option<(Policy, AnalyticOutcome)> = None;
        for program in programs {
            for f in grid.iter() {
                let policy = Policy::new(f, program.clone());
                let Ok(out) = self.analyze(&policy) else { continue };
                if out.normalized_mean_response > max_normalized_response {
                    continue;
                }
                if best.as_ref().is_none_or(|(_, b)| out.avg_power < b.avg_power) {
                    best = Some((policy, out));
                }
            }
        }
        best
    }

    /// The arrival rate `λ`.
    pub fn lambda(&self) -> f64 {
        self.lambda
    }

    /// The full-speed service rate `µ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleepscale_power::{presets, Frequency, SleepProgram};

    fn analyzer(power: &SystemPowerModel, rho: f64) -> PolicyAnalyzer<'_> {
        PolicyAnalyzer::from_utilization(power, FrequencyScaling::CpuBound, 1.0 / 0.194, rho)
            .unwrap()
    }

    #[test]
    fn model_uses_frequency_dependent_powers() {
        let power = presets::xeon();
        let a = analyzer(&power, 0.1);
        let f = Frequency::new(0.5).unwrap();
        let policy = Policy::new(f, SleepProgram::immediate(presets::C0I_S0I));
        let m = a.model(&policy).unwrap();
        // C0(i)S0(i) at f=0.5: 75·0.125 + 60.5.
        assert!((m.stages()[0].0 - (75.0 * 0.125 + 60.5)).abs() < 1e-9);
        assert!((m.mu_eff() - 0.5 / 0.194).abs() < 1e-9);
    }

    #[test]
    fn unstable_frequency_rejected() {
        let power = presets::xeon();
        let a = analyzer(&power, 0.5);
        let policy =
            Policy::new(Frequency::new(0.4).unwrap(), SleepProgram::immediate(presets::C0I_S0I));
        assert!(matches!(a.model(&policy), Err(AnalyticError::Unstable { .. })));
    }

    #[test]
    fn optimizer_meets_constraint_and_prefers_lower_power() {
        let power = presets::xeon();
        let a = analyzer(&power, 0.2);
        let grid = FrequencyGrid::new(0.25, 1.0, 0.01).unwrap();
        let programs = presets::standard_programs();
        let budget = 5.0; // ρb = 0.8
        let (policy, out) = a.min_power_policy(&programs, &grid, budget).unwrap();
        assert!(out.normalized_mean_response <= budget);
        // Must beat running flat out and never sleeping.
        let flat = a.analyze(&Policy::full_speed_no_sleep()).unwrap();
        assert!(out.avg_power < flat.avg_power);
        assert!(policy.frequency().get() < 1.0);
    }

    #[test]
    fn optimizer_none_when_budget_impossible() {
        let power = presets::xeon();
        let a = analyzer(&power, 0.2);
        let grid = FrequencyGrid::new(0.25, 1.0, 0.05).unwrap();
        let programs = presets::standard_programs();
        // µE[R] can never be below 1 (service alone).
        assert!(a.min_power_policy(&programs, &grid, 0.5).is_none());
    }

    #[test]
    fn figure5_frequency_for_qos_at_rho_04() {
        // Paper Figure 5: Google-like, C0(i)S0(i), ρ = 0.4, ρb = 0.8
        // (budget µE[R] = 5) → f ≈ 0.6 under the idealized model
        // (1/(f−ρ) = 5).
        let power = presets::xeon();
        let mu = 1.0 / 0.0042;
        let a =
            PolicyAnalyzer::from_utilization(&power, FrequencyScaling::CpuBound, mu, 0.4).unwrap();
        let grid = FrequencyGrid::new(0.45, 1.0, 0.01).unwrap();
        let programs = vec![SleepProgram::immediate(presets::C0I_S0I)];
        let (policy, out) = a.min_power_policy(&programs, &grid, 5.0).unwrap();
        assert!((policy.frequency().get() - 0.6).abs() < 0.02, "f = {}", policy.frequency());
        assert!(out.normalized_mean_response <= 5.0);
    }

    #[test]
    fn figure5_low_utilization_exceeds_qos_at_optimum() {
        // At ρ = 0.1 the unconstrained optimum sits well inside the QoS
        // budget (paper: µE[R] ≈ 3 with f ≈ 0.41).
        let power = presets::xeon();
        let mu = 1.0 / 0.0042;
        let a =
            PolicyAnalyzer::from_utilization(&power, FrequencyScaling::CpuBound, mu, 0.1).unwrap();
        let grid = FrequencyGrid::new(0.15, 1.0, 0.01).unwrap();
        let programs = vec![SleepProgram::immediate(presets::C0I_S0I)];
        let (policy, out) = a.min_power_policy(&programs, &grid, 5.0).unwrap();
        assert!(
            (policy.frequency().get() - 0.40).abs() < 0.04,
            "f = {} (paper ≈ 0.41)",
            policy.frequency()
        );
        assert!(out.normalized_mean_response < 5.0, "optimum exceeds the QoS requirement");
        assert!((out.normalized_mean_response - 3.0).abs() < 0.6, "paper: ≈ 3");
    }

    #[test]
    fn validation() {
        let power = presets::xeon();
        assert!(PolicyAnalyzer::new(&power, FrequencyScaling::CpuBound, 0.0, 1.0).is_err());
        assert!(PolicyAnalyzer::new(&power, FrequencyScaling::CpuBound, 1.0, -1.0).is_err());
    }
}
