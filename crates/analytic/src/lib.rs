//! Closed-form M/M/1-with-sleep-states results — the paper's appendix.
//!
//! Under Poisson arrivals (rate `λ`) and exponential service (effective
//! rate `µf`), the appendix gives exact expressions for the renewal-cycle
//! length `L`, the average power `E[P]`, the setup-delay moments `E[D^α]`,
//! the mean response time `E[R]`, and (for a single zero-delay sleep
//! state) the response-time tail `Pr(R ≥ d)`. Section 4.3 notes the
//! closed forms match the simulated Figure 1; this crate carries that
//! cross-check as property tests against `sleepscale-sim`.
//!
//! * [`MM1Sleep`] — the raw formulas over `(P_i, τ_i, w_i)` stage tuples.
//! * [`PolicyAnalyzer`] — a bridge from workspace types
//!   ([`sleepscale_power::Policy`], [`sleepscale_power::SystemPowerModel`])
//!   to [`MM1Sleep`], plus the idealized-model policy optimizer that
//!   draws Figure 6's solid curves.
//!
//! # Example
//!
//! ```
//! use sleepscale_analytic::MM1Sleep;
//! // M/M/1 at λ=1, µf=4 with a single immediate sleep state drawing
//! // 28.1 W, wake 1 s; active power 250 W.
//! let m = MM1Sleep::new(1.0, 4.0, 250.0, vec![(28.1, 0.0, 1.0)])?;
//! assert!(m.mean_response() > 1.0 / 3.0); // setup inflates response
//! assert!(m.avg_power() < 250.0);
//! # Ok::<(), sleepscale_analytic::AnalyticError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bridge;
mod error;
mod mg1;
mod model;

pub use bridge::{AnalyticOutcome, PolicyAnalyzer};
pub use error::AnalyticError;
pub use mg1::MG1Sleep;
pub use model::MM1Sleep;
