//! The appendix's "extends to general service time" claim: the M/G/1
//! closed forms against the simulator under gamma and hyper-exponential
//! service.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sleepscale_analytic::MG1Sleep;
use sleepscale_dist::{fit, Exponential};
use sleepscale_power::{presets, Frequency, Policy, SleepProgram, SystemState};
use sleepscale_sim::{generator, simulate, SimEnv};

const N_JOBS: usize = 80_000;

fn compare(rho: f64, cv: f64, state: SystemState, seed: u64) {
    let mean_service = 0.194;
    let lambda = rho / mean_service;
    let mut rng = StdRng::seed_from_u64(seed);
    let ia = Exponential::new(lambda).unwrap();
    let sv = fit::by_moments(mean_service, cv).unwrap();
    let jobs = generator::generate(N_JOBS, &ia, &*sv, &mut rng).unwrap();

    let env = SimEnv::xeon_cpu_bound();
    // Evaluate at f = 1 so the measured service law matches the stream.
    let policy =
        Policy::new(Frequency::MAX, SleepProgram::immediate(presets::immediate_stage(state)));
    let sim = simulate(&jobs, &policy, &env);

    let power = presets::xeon();
    let stages: Vec<(f64, f64, f64)> = policy
        .program()
        .stages()
        .iter()
        .map(|s| {
            (power.power(s.state(), Frequency::MAX).as_watts(), s.enter_after(), s.wake_latency())
        })
        .collect();
    let model = MG1Sleep::new(
        lambda,
        mean_service,
        cv * cv,
        power.active_power(Frequency::MAX).as_watts(),
        stages,
    )
    .unwrap();

    let rel_p = (sim.avg_power().as_watts() - model.avg_power()).abs() / model.avg_power();
    assert!(
        rel_p < 0.04,
        "E[P]: sim {:.2} vs analytic {:.2} (rho={rho}, cv={cv}, {})",
        sim.avg_power().as_watts(),
        model.avg_power(),
        state.label()
    );
    let rel_r = (sim.mean_response() - model.mean_response()).abs() / model.mean_response();
    assert!(
        rel_r < 0.1,
        "E[R]: sim {:.4} vs analytic {:.4} (rho={rho}, cv={cv}, {})",
        sim.mean_response(),
        model.mean_response(),
        state.label()
    );
}

#[test]
fn gamma_service_low_cv() {
    compare(0.3, 0.5, SystemState::C6_S0I, 1);
    compare(0.6, 0.5, SystemState::C0I_S0I, 2);
}

#[test]
fn hyperexp_service_mail_like_cv() {
    compare(0.3, 3.6, SystemState::C6_S0I, 3);
    compare(0.5, 2.0, SystemState::C3_S0I, 4);
}

#[test]
fn deterministic_service() {
    compare(0.4, 0.0, SystemState::C1_S0I, 5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn mg1_matches_simulation(
        rho in 0.1_f64..0.6,
        cv in 0.2_f64..3.0,
        state_idx in 0_usize..5,
        seed in 0_u64..1_000,
    ) {
        let state = SystemState::LOW_POWER_LADDER[state_idx];
        compare(rho, cv, state, seed);
    }
}
