//! Section 4.3's claim, as tests: the appendix closed forms match the
//! Algorithm-1 simulator under Poisson arrivals and exponential service.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sleepscale_analytic::PolicyAnalyzer;
use sleepscale_power::{
    presets, Frequency, FrequencyScaling, Policy, SleepProgram, SleepStage, SystemState,
};
use sleepscale_sim::{generator, simulate, SimEnv};

const N_JOBS: usize = 60_000;

/// Compares analytic and simulated E[P] and E[R] for one configuration.
fn compare(rho: f64, f: f64, program: SleepProgram, seed: u64, tol_power: f64, tol_resp: f64) {
    let mean_service = 0.194; // DNS-like
    let mu = 1.0 / mean_service;
    let mut rng = StdRng::seed_from_u64(seed);
    let jobs = generator::generate_poisson_exp(N_JOBS, rho, mean_service, &mut rng).unwrap();
    let env = SimEnv::xeon_cpu_bound();
    let policy = Policy::new(Frequency::new(f).unwrap(), program);

    let sim = simulate(&jobs, &policy, &env);
    let power = presets::xeon();
    let analyzer =
        PolicyAnalyzer::from_utilization(&power, FrequencyScaling::CpuBound, mu, rho).unwrap();
    let ana = analyzer.analyze(&policy).unwrap();

    let sim_power = sim.avg_power().as_watts();
    let rel_p = (sim_power - ana.avg_power).abs() / ana.avg_power;
    assert!(
        rel_p < tol_power,
        "E[P]: sim {sim_power:.2} W vs analytic {:.2} W (rho={rho}, f={f}, {})",
        ana.avg_power,
        policy.program().label(),
    );

    let sim_resp = sim.mean_response();
    let rel_r = (sim_resp - ana.mean_response).abs() / ana.mean_response;
    assert!(
        rel_r < tol_resp,
        "E[R]: sim {sim_resp:.4} s vs analytic {:.4} s (rho={rho}, f={f}, {})",
        ana.mean_response,
        policy.program().label(),
    );
}

#[test]
fn matches_for_all_standard_states_at_low_utilization() {
    for (i, program) in presets::standard_programs().into_iter().enumerate() {
        compare(0.1, 0.42, program, 100 + i as u64, 0.03, 0.06);
    }
}

#[test]
fn matches_for_all_standard_states_at_high_utilization() {
    for (i, program) in presets::standard_programs().into_iter().enumerate() {
        compare(0.7, 0.9, program, 200 + i as u64, 0.03, 0.06);
    }
}

#[test]
fn matches_with_delayed_second_stage() {
    // Figure 3's program: C0(i)S0(i) immediately, C6S3 after τ2 = 30/µ.
    let tau2 = 30.0 * 0.194;
    let program = SleepProgram::new(vec![
        SleepStage::new(SystemState::C0I_S0I, 0.0, 0.0).unwrap(),
        SleepStage::new(SystemState::C6_S3, tau2, 1.0).unwrap(),
    ])
    .unwrap();
    compare(0.1, 0.5, program, 300, 0.03, 0.08);
}

#[test]
fn matches_with_never_sleep() {
    compare(0.3, 0.8, SleepProgram::never_sleep(), 400, 0.03, 0.06);
}

#[test]
fn matches_with_five_stage_cascade() {
    compare(0.2, 0.6, presets::sequential_cascade(0.05), 500, 0.03, 0.08);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random (ρ, f, state): analytic and simulated E[P]/E[R] agree
    /// within Monte-Carlo tolerance.
    #[test]
    fn analytic_matches_simulation(
        rho in 0.05_f64..0.6,
        f_margin in 0.08_f64..0.5,
        state_idx in 0_usize..5,
        seed in 0_u64..1_000,
    ) {
        let f = (rho + f_margin).min(1.0);
        let state = SystemState::LOW_POWER_LADDER[state_idx];
        let program = SleepProgram::immediate(presets::immediate_stage(state));
        compare(rho, f, program, seed, 0.05, 0.12);
    }

    /// The analytic tail formula matches the empirical exceedance
    /// probability for single immediate states.
    #[test]
    fn tail_formula_matches_empirical(
        rho in 0.1_f64..0.5,
        state_idx in 0_usize..4, // exclude C6S3: its 1 s wake makes d huge
        seed in 0_u64..1_000,
    ) {
        let mean_service = 0.194;
        let mu = 1.0 / mean_service;
        let f = Frequency::new((rho + 0.3).min(1.0)).unwrap();
        let state = SystemState::LOW_POWER_LADDER[state_idx];
        let policy = Policy::new(f, SleepProgram::immediate(presets::immediate_stage(state)));

        let mut rng = StdRng::seed_from_u64(seed);
        let jobs = generator::generate_poisson_exp(N_JOBS, rho, mean_service, &mut rng).unwrap();
        let sim = simulate(&jobs, &policy, &SimEnv::xeon_cpu_bound());

        let power = presets::xeon();
        let analyzer =
            PolicyAnalyzer::from_utilization(&power, FrequencyScaling::CpuBound, mu, rho).unwrap();
        let model = analyzer.model(&policy).unwrap();
        // Evaluate at d = twice the analytic mean response.
        let d = 2.0 * model.mean_response();
        let analytic = model.prob_response_exceeds(d).unwrap();
        let empirical = sim.fraction_exceeding(d);
        prop_assert!(
            (analytic - empirical).abs() < 0.02 + 0.25 * analytic,
            "Pr(R>=d): analytic {analytic:.4} vs empirical {empirical:.4}"
        );
    }
}
