//! Property tests for the power model: invariants that must hold at
//! every frequency, not just the spot values of Table 2.

use proptest::prelude::*;
use sleepscale_power::prelude::*;

fn freq() -> impl Strategy<Value = Frequency> {
    (0.01f64..=1.0).prop_map(|v| Frequency::new(v).expect("in range"))
}

proptest! {
    /// Power is monotone non-decreasing in frequency for every state
    /// (the monotonicity the DVFS-only selection logic relies on).
    #[test]
    fn power_monotone_in_frequency(a in freq(), b in freq()) {
        let m = presets::xeon();
        let (lo, hi) = if a.get() <= b.get() { (a, b) } else { (b, a) };
        for state in std::iter::once(SystemState::C0A_S0A)
            .chain(SystemState::LOW_POWER_LADDER)
        {
            prop_assert!(
                m.power(state, lo).as_watts() <= m.power(state, hi).as_watts() + 1e-12,
                "{state}: P({lo}) > P({hi})"
            );
        }
    }

    /// Every state's power matches its closed form at every frequency,
    /// and the frequency-independent orderings hold. (The
    /// frequency-*dependent* states C0(i)/C1 cross the fixed-power
    /// states at low f — e.g. halted leakage `47f²` undercuts C3's
    /// 22 W below f ≈ 0.68 — so only exact forms, not a total order,
    /// are invariant.)
    #[test]
    fn state_powers_match_closed_forms(f in freq()) {
        let m = presets::xeon();
        let p = |s: SystemState| m.power(s, f).as_watts();
        let v = f.get();
        prop_assert!((p(SystemState::C0A_S0A) - (130.0 * v * v * v + 120.0)).abs() < 1e-9);
        prop_assert!((p(SystemState::C0I_S0I) - (75.0 * v * v * v + 60.5)).abs() < 1e-9);
        prop_assert!((p(SystemState::C1_S0I) - (47.0 * v * v + 60.5)).abs() < 1e-9);
        prop_assert!((p(SystemState::C3_S0I) - 82.5).abs() < 1e-9);
        prop_assert!((p(SystemState::C6_S0I) - 75.5).abs() < 1e-9);
        prop_assert!((p(SystemState::C6_S3) - 28.1).abs() < 1e-9);
        // Frequency-independent orderings.
        for s in SystemState::LOW_POWER_LADDER {
            prop_assert!(p(SystemState::C0A_S0A) > p(s), "active dominates {s}");
            prop_assert!(p(s) > p(SystemState::C6_S3) || s == SystemState::C6_S3);
        }
        prop_assert!(p(SystemState::C3_S0I) > p(SystemState::C6_S0I));
    }

    /// Frequency grids always include their endpoints, stay sorted, and
    /// never emit values outside (0, 1].
    #[test]
    fn grids_are_sorted_and_bounded(
        min in 0.01f64..0.9,
        span in 0.01f64..0.99,
        step in 0.005f64..0.3,
    ) {
        let max = (min + span).min(1.0);
        let grid = FrequencyGrid::new(min, max, step).expect("valid bounds");
        let points: Vec<f64> = grid.iter().map(|f| f.get()).collect();
        prop_assert!(!points.is_empty());
        prop_assert!((points[0] - min).abs() < 1e-9);
        prop_assert!((points.last().unwrap() - max).abs() < 1e-9);
        for w in points.windows(2) {
            prop_assert!(w[1] > w[0]);
            prop_assert!(w[1] - w[0] <= step + 1e-9);
        }
        prop_assert!(points.iter().all(|v| *v > 0.0 && *v <= 1.0));
    }

    /// Service multipliers: never below 1, ordered by coupling strength,
    /// and exactly 1 at f = 1.
    #[test]
    fn scaling_multipliers_ordered(f in freq(), beta in 0.0f64..=1.0) {
        let law = FrequencyScaling::sublinear(beta).expect("valid beta");
        let m = law.service_multiplier(f);
        prop_assert!(m >= 1.0 - 1e-12);
        prop_assert!(m <= FrequencyScaling::CpuBound.service_multiplier(f) + 1e-12);
        prop_assert!(m >= FrequencyScaling::MemoryBound.service_multiplier(f) - 1e-12);
        let at_full = law.service_multiplier(Frequency::MAX);
        prop_assert!((at_full - 1.0).abs() < 1e-12);
    }

    /// Over-provisioning scaling never leaves (0, 1] and never reduces
    /// the frequency for factors >= 1.
    #[test]
    fn scaled_by_stays_in_range(f in freq(), factor in 1.0f64..3.0) {
        let boosted = f.scaled_by(factor);
        prop_assert!(boosted.get() >= f.get() - 1e-12);
        prop_assert!(boosted.get() <= 1.0);
    }

    /// Sleep programs accept any strictly increasing delay sequence and
    /// report the correct stage for any elapsed idle time.
    #[test]
    fn sleep_program_stage_lookup(delays in proptest::collection::vec(0.0f64..10.0, 1..5)) {
        let mut taus: Vec<f64> = delays;
        taus.sort_by(|a, b| a.partial_cmp(b).unwrap());
        taus.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let states = SystemState::LOW_POWER_LADDER;
        let stages: Vec<SleepStage> = taus
            .iter()
            .enumerate()
            .map(|(i, tau)| {
                SleepStage::new(states[i.min(4)], *tau, presets::default_wake_latency(states[i.min(4)]))
                    .expect("valid stage")
            })
            .collect();
        let program = SleepProgram::new(stages.clone()).expect("strictly increasing");
        for (i, stage) in stages.iter().enumerate() {
            // Exactly at the entry delay, the stage is occupied.
            let found = program.stage_index_at(stage.enter_after());
            prop_assert_eq!(found, Some(i));
        }
        // Before the first delay: no stage (unless tau_1 == 0).
        if taus[0] > 0.0 {
            prop_assert!(program.stage_at(taus[0] / 2.0).is_none() || taus[0] < 1e-9);
        }
    }
}
