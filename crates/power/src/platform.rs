use crate::error::PowerError;
use crate::units::Watts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Platform power states (S-states) from Table 3 of the paper.
///
/// `S0(a)` is active (pairs with `C0(a)` only), `S0(i)` is idle (pairs with
/// every non-active C-state), `S3` is platform sleep (RAM powered, pairs
/// with `C6` only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PlatformState {
    /// `S0(a)`: platform active.
    S0Active,
    /// `S0(i)`: platform idle.
    S0Idle,
    /// `S3`: platform sleep; only RAM stays powered.
    S3,
}

impl PlatformState {
    /// All platform states in increasing sleep depth.
    pub const ALL: [PlatformState; 3] =
        [PlatformState::S0Active, PlatformState::S0Idle, PlatformState::S3];

    /// Canonical short name used in the paper (e.g. `"S0(a)"`).
    pub fn name(self) -> &'static str {
        match self {
            PlatformState::S0Active => "S0(a)",
            PlatformState::S0Idle => "S0(i)",
            PlatformState::S3 => "S3",
        }
    }
}

impl fmt::Display for PlatformState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One platform component's power draw in each platform condition
/// (one row of Table 2, minus the CPU).
///
/// Table 2 distinguishes five columns (operating / idle / sleep / deep
/// sleep / deeper sleep) but for non-CPU components the middle three all
/// correspond to platform `S0(i)`; the paper's "Platform total" row
/// collapses them accordingly. We keep the full five-column data so the
/// table can be reproduced verbatim, and map S-states onto columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    name: String,
    count: u32,
    operating_watts: f64,
    idle_watts: f64,
    sleep_watts: f64,
    deep_sleep_watts: f64,
    deeper_sleep_watts: f64,
}

impl Component {
    /// Builds a component row.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidPower`] if any power figure is negative
    /// or non-finite.
    pub fn new(
        name: impl Into<String>,
        count: u32,
        operating_watts: f64,
        idle_watts: f64,
        sleep_watts: f64,
        deep_sleep_watts: f64,
        deeper_sleep_watts: f64,
    ) -> Result<Component, PowerError> {
        for v in [operating_watts, idle_watts, sleep_watts, deep_sleep_watts, deeper_sleep_watts] {
            if !v.is_finite() || v < 0.0 {
                return Err(PowerError::InvalidPower { value: v });
            }
        }
        Ok(Component {
            name: name.into(),
            count,
            operating_watts,
            idle_watts,
            sleep_watts,
            deep_sleep_watts,
            deeper_sleep_watts,
        })
    }

    /// Component name (e.g. `"RAM"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// How many identical units are installed (Table 2 uses RAM×6).
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Per-unit power for a Table-2 column index 0..5
    /// (operating, idle, sleep, deep sleep, deeper sleep).
    pub fn column_watts(&self, column: usize) -> Option<f64> {
        match column {
            0 => Some(self.operating_watts),
            1 => Some(self.idle_watts),
            2 => Some(self.sleep_watts),
            3 => Some(self.deep_sleep_watts),
            4 => Some(self.deeper_sleep_watts),
            _ => None,
        }
    }

    /// Total power (all units) contributed in a given platform state.
    pub fn power(&self, state: PlatformState) -> Watts {
        let per_unit = match state {
            PlatformState::S0Active => self.operating_watts,
            // The idle / sleep / deep-sleep columns of Table 2 are all
            // S0(i); they are identical for every non-CPU component.
            PlatformState::S0Idle => self.idle_watts,
            PlatformState::S3 => self.deeper_sleep_watts,
        };
        Watts::new(per_unit * f64::from(self.count))
    }
}

/// Aggregate platform power model: the non-CPU half of Table 2.
///
/// ```
/// use sleepscale_power::{PlatformPowerModel, PlatformState};
/// let platform = PlatformPowerModel::xeon_platform();
/// assert!((platform.power(PlatformState::S0Active).as_watts() - 120.0).abs() < 1e-9);
/// assert!((platform.power(PlatformState::S0Idle).as_watts() - 60.5).abs() < 1e-9);
/// assert!((platform.power(PlatformState::S3).as_watts() - 13.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformPowerModel {
    components: Vec<Component>,
}

impl PlatformPowerModel {
    /// Builds a platform from its component rows.
    pub fn from_components(components: Vec<Component>) -> PlatformPowerModel {
        PlatformPowerModel { components }
    }

    /// The exact component stack of Table 2 (chipset, RAM×6, HDD, NIC,
    /// fan, PSU). Totals: 120 W active, 60.5 W idle, 13.1 W in S3.
    pub fn xeon_platform() -> PlatformPowerModel {
        let components = vec![
            Component::new("Chipset", 1, 7.8, 7.8, 7.8, 7.8, 7.8).expect("valid"),
            // Table 2 lists the six-DIMM total; keep count=1 with totals so
            // the table prints exactly as published.
            Component::new("RAM x6", 1, 23.1, 10.4, 10.4, 10.4, 3.0).expect("valid"),
            Component::new("HDD", 1, 6.2, 4.6, 4.6, 4.6, 0.8).expect("valid"),
            Component::new("NIC", 1, 2.9, 1.7, 1.7, 1.7, 0.5).expect("valid"),
            Component::new("Fan", 1, 10.0, 1.0, 1.0, 1.0, 0.0).expect("valid"),
            Component::new("PSU", 1, 70.0, 35.0, 35.0, 35.0, 1.0).expect("valid"),
        ];
        PlatformPowerModel { components }
    }

    /// The platform implied by the paper's *prose* (Section 3.1 computes
    /// `C0(i)S0(i)` as `75V²f + 52.7 W`, i.e. the Table-2 idle total minus
    /// the 7.8 W chipset). Provided for sensitivity checks; see DESIGN.md.
    pub fn xeon_platform_prose_variant() -> PlatformPowerModel {
        let mut platform = PlatformPowerModel::xeon_platform();
        platform.components.retain(|c| c.name() != "Chipset");
        platform
    }

    /// Total platform power in `state`.
    pub fn power(&self, state: PlatformState) -> Watts {
        self.components.iter().map(|c| c.power(state)).sum()
    }

    /// The component rows.
    pub fn components(&self) -> &[Component] {
        &self.components
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_totals() {
        let p = PlatformPowerModel::xeon_platform();
        assert!((p.power(PlatformState::S0Active).as_watts() - 120.0).abs() < 1e-9);
        assert!((p.power(PlatformState::S0Idle).as_watts() - 60.5).abs() < 1e-9);
        assert!((p.power(PlatformState::S3).as_watts() - 13.1).abs() < 1e-9);
    }

    #[test]
    fn prose_variant_drops_chipset() {
        let p = PlatformPowerModel::xeon_platform_prose_variant();
        assert!((p.power(PlatformState::S0Idle).as_watts() - 52.7).abs() < 1e-9);
        assert_eq!(p.components().len(), 5);
    }

    #[test]
    fn component_count_multiplies_power() {
        let c = Component::new("RAM", 6, 2.0, 1.0, 1.0, 1.0, 0.5).unwrap();
        assert!((c.power(PlatformState::S0Active).as_watts() - 12.0).abs() < 1e-12);
        assert!((c.power(PlatformState::S3).as_watts() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn component_rejects_bad_power() {
        assert!(Component::new("x", 1, -1.0, 0.0, 0.0, 0.0, 0.0).is_err());
        assert!(Component::new("x", 1, 0.0, f64::NAN, 0.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn column_access_matches_states() {
        let c = Component::new("PSU", 1, 70.0, 35.0, 35.0, 35.0, 1.0).unwrap();
        assert_eq!(c.column_watts(0), Some(70.0));
        assert_eq!(c.column_watts(4), Some(1.0));
        assert_eq!(c.column_watts(5), None);
    }

    #[test]
    fn platform_state_names() {
        assert_eq!(PlatformState::S0Active.to_string(), "S0(a)");
        assert_eq!(PlatformState::S3.name(), "S3");
    }

    #[test]
    fn deeper_platform_states_use_less_power() {
        let p = PlatformPowerModel::xeon_platform();
        let a = p.power(PlatformState::S0Active).as_watts();
        let i = p.power(PlatformState::S0Idle).as_watts();
        let s3 = p.power(PlatformState::S3).as_watts();
        assert!(a > i && i > s3);
    }
}
