//! Energy-proportionality analytics (Subramaniam & Feng).
//!
//! An ideally proportional server draws power linearly in utilization,
//! from zero at idle to peak at full load. Real servers draw a large
//! constant floor, so the measured utilization→power curve sits above
//! the ideal diagonal. This module quantifies the gap from a set of
//! [`PowerSample`]s (one per ledger bucket in practice):
//!
//! * **EP score** — `1 − Σ(p_norm − u) / Σu` over samples with
//!   `p_norm = watts / peak`: the area between the measured curve and
//!   the ideal diagonal, normalized by the area under the diagonal.
//!   1.0 is perfectly proportional; 0.0 means the server burns peak
//!   power regardless of load; sleep states push the score up.
//! * **Dynamic range** — `(peak − idle) / peak`, the fraction of peak
//!   power that actually responds to load.
//! * **Utilization→power curve** — samples bucketed into fixed-width
//!   utilization bins, averaging watts per bin, for plotting against
//!   the SPECpower-style staircase.

use serde::{Deserialize, Serialize};

/// One observation of the utilization→power relationship: the busy
/// fraction of an interval and the average power drawn over it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSample {
    /// Fraction of the interval spent serving jobs, in `[0, 1]`.
    pub utilization: f64,
    /// Average power over the interval, in watts.
    pub watts: f64,
}

/// Energy-proportionality summary of a sample set (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyProportionality {
    /// `1 − Σ(p_norm − u)/Σu`: 1.0 is ideal, 0.0 is a flat power draw.
    pub ep_score: f64,
    /// `(peak − idle)/peak`: the load-responsive fraction of peak power.
    pub dynamic_range: f64,
    /// Lowest per-sample average power observed, in watts.
    pub idle_watts: f64,
    /// Highest per-sample average power observed, in watts.
    pub peak_watts: f64,
}

/// Computes the EP summary over `samples`.
///
/// Returns `None` when the metric is undefined: no samples, no positive
/// power (peak would be zero), or zero total utilization (the EP score
/// divides by `Σu`; an always-idle server has no proportionality to
/// measure).
pub fn analyze(samples: &[PowerSample]) -> Option<EnergyProportionality> {
    if samples.is_empty() {
        return None;
    }
    let mut peak = f64::NEG_INFINITY;
    let mut idle = f64::INFINITY;
    let mut u_sum = 0.0;
    for s in samples {
        peak = peak.max(s.watts);
        idle = idle.min(s.watts);
        u_sum += s.utilization;
    }
    if peak <= 0.0 || u_sum <= 0.0 {
        return None;
    }
    let gap: f64 = samples.iter().map(|s| s.watts / peak - s.utilization).sum();
    Some(EnergyProportionality {
        ep_score: 1.0 - gap / u_sum,
        dynamic_range: (peak - idle) / peak,
        idle_watts: idle,
        peak_watts: peak,
    })
}

/// Bins `samples` into `bins` fixed-width utilization bins over `[0, 1]`
/// and averages the watts in each, returning one representative
/// [`PowerSample`] per non-empty bin (utilization at the bin center),
/// in increasing-utilization order.
///
/// Returns an empty vector when `bins == 0` or `samples` is empty.
pub fn utilization_power_curve(samples: &[PowerSample], bins: usize) -> Vec<PowerSample> {
    if bins == 0 || samples.is_empty() {
        return Vec::new();
    }
    let mut watt_sum = vec![0.0_f64; bins];
    let mut count = vec![0usize; bins];
    for s in samples {
        let b = ((s.utilization * bins as f64) as usize).min(bins - 1);
        watt_sum[b] += s.watts;
        count[b] += 1;
    }
    (0..bins)
        .filter(|&b| count[b] > 0)
        .map(|b| PowerSample {
            utilization: (b as f64 + 0.5) / bins as f64,
            watts: watt_sum[b] / count[b] as f64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(u: f64, w: f64) -> PowerSample {
        PowerSample { utilization: u, watts: w }
    }

    #[test]
    fn ideal_server_scores_one() {
        // Power exactly linear in utilization, zero idle floor.
        let samples: Vec<_> = (0..=10).map(|i| s(i as f64 / 10.0, i as f64 * 25.0)).collect();
        let ep = analyze(&samples).unwrap();
        assert!((ep.ep_score - 1.0).abs() < 1e-12, "{}", ep.ep_score);
        assert!((ep.dynamic_range - 1.0).abs() < 1e-12);
        assert_eq!(ep.peak_watts, 250.0);
        assert_eq!(ep.idle_watts, 0.0);
    }

    #[test]
    fn flat_draw_scores_poorly() {
        // Constant peak power at every load: p_norm − u sums to
        // Σ(1 − u), so the score is 1 − Σ(1−u)/Σu.
        let samples = [s(0.0, 250.0), s(0.5, 250.0), s(1.0, 250.0)];
        let ep = analyze(&samples).unwrap();
        let expect = 1.0 - (1.0 + 0.5 + 0.0) / 1.5;
        assert!((ep.ep_score - expect).abs() < 1e-12);
        assert_eq!(ep.dynamic_range, 0.0);
    }

    #[test]
    fn undefined_cases_are_none() {
        assert!(analyze(&[]).is_none());
        assert!(analyze(&[s(0.0, 0.0)]).is_none(), "no positive power");
        assert!(analyze(&[s(0.0, 100.0)]).is_none(), "zero total utilization");
    }

    #[test]
    fn curve_bins_and_averages() {
        let samples = [s(0.05, 10.0), s(0.08, 30.0), s(0.95, 100.0)];
        let curve = utilization_power_curve(&samples, 10);
        assert_eq!(curve.len(), 2);
        assert!((curve[0].utilization - 0.05).abs() < 1e-12);
        assert!((curve[0].watts - 20.0).abs() < 1e-12);
        assert!((curve[1].utilization - 0.95).abs() < 1e-12);
        assert!((curve[1].watts - 100.0).abs() < 1e-12);
        assert!(utilization_power_curve(&samples, 0).is_empty());
        assert!(utilization_power_curve(&[], 10).is_empty());
    }

    #[test]
    fn full_utilization_lands_in_last_bin() {
        let curve = utilization_power_curve(&[s(1.0, 50.0)], 4);
        assert_eq!(curve.len(), 1);
        assert!((curve[0].utilization - 0.875).abs() < 1e-12);
    }
}
