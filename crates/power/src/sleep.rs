use crate::error::PowerError;
use crate::system::SystemState;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One rung of a sleep ladder: the low-power state triple `(P_i, τ_i, w_i)`
/// of Section 3.2.
///
/// `P_i` is obtained from the state and the power model at evaluation time
/// (some states' power depends on the DVFS setting); the stage itself
/// carries the target [`SystemState`], the entry delay `τ_i` measured from
/// the moment the queue empties, and the wake-up latency `w_i` paid when a
/// job arrives while the server sits in this stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SleepStage {
    state: SystemState,
    enter_after: f64,
    wake_latency: f64,
}

impl SleepStage {
    /// Builds a stage.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidSleepProgram`] if the delay or latency
    /// is negative/non-finite, or the state is the active state.
    pub fn new(
        state: SystemState,
        enter_after: f64,
        wake_latency: f64,
    ) -> Result<SleepStage, PowerError> {
        if state.is_active() {
            return Err(PowerError::InvalidSleepProgram {
                reason: "the active state C0(a)S0(a) cannot be a sleep stage".into(),
            });
        }
        if !enter_after.is_finite() || enter_after < 0.0 {
            return Err(PowerError::InvalidSleepProgram {
                reason: format!("entry delay {enter_after} must be finite and >= 0"),
            });
        }
        if !wake_latency.is_finite() || wake_latency < 0.0 {
            return Err(PowerError::InvalidSleepProgram {
                reason: format!("wake latency {wake_latency} must be finite and >= 0"),
            });
        }
        Ok(SleepStage { state, enter_after, wake_latency })
    }

    /// Unchecked `const` construction for crate-internal presets whose
    /// invariants hold by inspection (non-active state, non-negative τ/w).
    pub(crate) const fn from_raw_parts(
        state: SystemState,
        enter_after: f64,
        wake_latency: f64,
    ) -> SleepStage {
        SleepStage { state, enter_after, wake_latency }
    }

    /// The low-power system state occupied in this stage.
    pub fn state(&self) -> SystemState {
        self.state
    }

    /// `τ_i`: seconds after the queue empties at which this stage begins.
    pub fn enter_after(&self) -> f64 {
        self.enter_after
    }

    /// `w_i`: seconds needed to return to `C0(a)S0(a)` from this stage.
    pub fn wake_latency(&self) -> f64 {
        self.wake_latency
    }
}

impl fmt::Display for SleepStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (τ={}s, w={}s)", self.state, self.enter_after, self.wake_latency)
    }
}

/// An ordered sleep ladder: the full low-power-state *sequence* a server
/// walks down while idle (Section 3.2).
///
/// Stages must have strictly increasing entry delays `τ_1 < τ_2 < … < τ_n`.
/// The paper's default policies are single-stage programs with `τ_1 = 0`
/// ([`SleepProgram::immediate`]); Figure 3 studies two-stage programs
/// (`C0(i)S0(i) → C6S3` after `τ_2`), and engineering lesson 5 studies the
/// full five-stage cascade.
///
/// An *empty* program models a server that never leaves `C0(a)S0(a)` while
/// idle — i.e. idle time is charged at active power. The paper's
/// "DVFS-only" baseline idles in `C0(i)S0(i)` instead, which is the
/// single-stage immediate program for that state.
///
/// ```
/// use sleepscale_power::{SleepProgram, SleepStage, SystemState};
/// let two_stage = SleepProgram::new(vec![
///     SleepStage::new(SystemState::C0I_S0I, 0.0, 0.0)?,
///     SleepStage::new(SystemState::C6_S3, 0.126, 1.0)?,
/// ])?;
/// assert_eq!(two_stage.stages().len(), 2);
/// assert_eq!(two_stage.stage_at(0.05).unwrap().state(), SystemState::C0I_S0I);
/// assert_eq!(two_stage.stage_at(0.2).unwrap().state(), SystemState::C6_S3);
/// # Ok::<(), sleepscale_power::PowerError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SleepProgram {
    stages: Vec<SleepStage>,
}

impl SleepProgram {
    /// Builds a program from ordered stages.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidSleepProgram`] unless entry delays are
    /// strictly increasing.
    pub fn new(stages: Vec<SleepStage>) -> Result<SleepProgram, PowerError> {
        for pair in stages.windows(2) {
            if pair[1].enter_after() <= pair[0].enter_after() {
                return Err(PowerError::InvalidSleepProgram {
                    reason: format!(
                        "entry delays must be strictly increasing, got {} then {}",
                        pair[0].enter_after(),
                        pair[1].enter_after()
                    ),
                });
            }
        }
        Ok(SleepProgram { stages })
    }

    /// The program that never sleeps: idle time stays in `C0(a)S0(a)`.
    pub fn never_sleep() -> SleepProgram {
        SleepProgram { stages: Vec::new() }
    }

    /// A single-stage program entering `state` the moment the queue
    /// empties (`τ_1 = 0`), with `wake_latency` from
    /// [`crate::presets::default_wake_latency`] applied by the caller.
    pub fn immediate(stage: SleepStage) -> SleepProgram {
        SleepProgram { stages: vec![stage] }
    }

    /// The ordered stages.
    pub fn stages(&self) -> &[SleepStage] {
        &self.stages
    }

    /// True when the program has no stages (idle at active power).
    pub fn is_never_sleep(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage occupied `elapsed_idle` seconds after the queue empties,
    /// or `None` if no stage has been entered yet (still in active-idle).
    pub fn stage_at(&self, elapsed_idle: f64) -> Option<&SleepStage> {
        self.stages.iter().rev().find(|s| s.enter_after() <= elapsed_idle)
    }

    /// Index of the stage occupied at `elapsed_idle`, if any.
    pub fn stage_index_at(&self, elapsed_idle: f64) -> Option<usize> {
        self.stages.iter().rposition(|s| s.enter_after() <= elapsed_idle)
    }

    /// The deepest stage (largest τ), if any.
    pub fn deepest(&self) -> Option<&SleepStage> {
        self.stages.last()
    }

    /// A human-readable label, e.g. `"C0(i)S0(i)→C6S3"`; `"C0(a)S0(a)"`
    /// for the never-sleep program.
    pub fn label(&self) -> String {
        if self.stages.is_empty() {
            "C0(a)S0(a)".to_string()
        } else {
            self.stages.iter().map(|s| s.state().label()).collect::<Vec<_>>().join("→")
        }
    }
}

impl fmt::Display for SleepProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl sleepscale_journal::Snapshot for SleepStage {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        self.state.snapshot(w);
        w.put_f64(self.enter_after);
        w.put_f64(self.wake_latency);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<SleepStage, sleepscale_journal::CodecError> {
        let state = SystemState::restore(r)?;
        let enter_after = r.get_f64()?;
        let wake_latency = r.get_f64()?;
        SleepStage::new(state, enter_after, wake_latency)
            .map_err(|e| sleepscale_journal::CodecError::Invalid(e.to_string()))
    }
}

impl sleepscale_journal::Snapshot for SleepProgram {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        self.stages.snapshot(w);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<SleepProgram, sleepscale_journal::CodecError> {
        let stages = Vec::<SleepStage>::restore(r)?;
        SleepProgram::new(stages)
            .map_err(|e| sleepscale_journal::CodecError::Invalid(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(state: SystemState, tau: f64, w: f64) -> SleepStage {
        SleepStage::new(state, tau, w).unwrap()
    }

    #[test]
    fn stage_rejects_active_state() {
        assert!(SleepStage::new(SystemState::C0A_S0A, 0.0, 0.0).is_err());
    }

    #[test]
    fn stage_rejects_negative_parameters() {
        assert!(SleepStage::new(SystemState::C6_S3, -1.0, 0.0).is_err());
        assert!(SleepStage::new(SystemState::C6_S3, 0.0, -1.0).is_err());
        assert!(SleepStage::new(SystemState::C6_S3, f64::NAN, 0.0).is_err());
    }

    #[test]
    fn program_requires_strictly_increasing_delays() {
        let bad = SleepProgram::new(vec![
            stage(SystemState::C0I_S0I, 0.0, 0.0),
            stage(SystemState::C6_S3, 0.0, 1.0),
        ]);
        assert!(bad.is_err());
        let good = SleepProgram::new(vec![
            stage(SystemState::C0I_S0I, 0.0, 0.0),
            stage(SystemState::C6_S3, 0.5, 1.0),
        ]);
        assert!(good.is_ok());
    }

    #[test]
    fn stage_lookup_by_elapsed_idle() {
        let p = SleepProgram::new(vec![
            stage(SystemState::C0I_S0I, 0.0, 0.0),
            stage(SystemState::C3_S0I, 0.1, 1e-4),
            stage(SystemState::C6_S3, 1.0, 1.0),
        ])
        .unwrap();
        assert_eq!(p.stage_at(0.0).unwrap().state(), SystemState::C0I_S0I);
        assert_eq!(p.stage_at(0.5).unwrap().state(), SystemState::C3_S0I);
        assert_eq!(p.stage_at(5.0).unwrap().state(), SystemState::C6_S3);
        assert_eq!(p.stage_index_at(5.0), Some(2));
        assert_eq!(p.deepest().unwrap().state(), SystemState::C6_S3);
    }

    #[test]
    fn delayed_first_stage_leaves_initial_gap() {
        let p = SleepProgram::new(vec![stage(SystemState::C6_S3, 2.0, 1.0)]).unwrap();
        assert!(p.stage_at(1.0).is_none());
        assert!(p.stage_at(2.0).is_some());
        assert_eq!(p.stage_index_at(1.0), None);
    }

    #[test]
    fn never_sleep_program() {
        let p = SleepProgram::never_sleep();
        assert!(p.is_never_sleep());
        assert!(p.stage_at(100.0).is_none());
        assert!(p.deepest().is_none());
        assert_eq!(p.label(), "C0(a)S0(a)");
    }

    #[test]
    fn labels() {
        let p = SleepProgram::new(vec![
            stage(SystemState::C0I_S0I, 0.0, 0.0),
            stage(SystemState::C6_S3, 0.5, 1.0),
        ])
        .unwrap();
        assert_eq!(p.label(), "C0(i)S0(i)→C6S3");
        assert_eq!(p.to_string(), p.label());
        let single = SleepProgram::immediate(stage(SystemState::C6_S0I, 0.0, 1e-3));
        assert_eq!(single.label(), "C6S0(i)");
    }
}
