use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating power-model types.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A frequency outside the valid scaling range `(0, 1]`.
    InvalidFrequency {
        /// The offending value.
        value: f64,
    },
    /// A CPU/platform state pair that the hardware does not support
    /// (Table 3: e.g. `C0(a)` pairs only with `S0(a)`, `S3` only with `C6`).
    UnsupportedStatePair {
        /// CPU state name.
        cpu: &'static str,
        /// Platform state name.
        platform: &'static str,
    },
    /// A sleep program whose entry delays are not strictly increasing,
    /// or whose stage parameters are negative / non-finite.
    InvalidSleepProgram {
        /// Human-readable reason.
        reason: String,
    },
    /// A power figure that is negative or non-finite.
    InvalidPower {
        /// The offending value in watts.
        value: f64,
    },
    /// A frequency grid whose bounds or step are inconsistent.
    InvalidGrid {
        /// Human-readable reason.
        reason: String,
    },
    /// A sub-linear scaling exponent outside `[0, 1]`.
    InvalidScalingExponent {
        /// The offending exponent.
        beta: f64,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidFrequency { value } => {
                write!(f, "frequency {value} is outside the valid range (0, 1]")
            }
            PowerError::UnsupportedStatePair { cpu, platform } => {
                write!(f, "cpu state {cpu} cannot be combined with platform state {platform}")
            }
            PowerError::InvalidSleepProgram { reason } => {
                write!(f, "invalid sleep program: {reason}")
            }
            PowerError::InvalidPower { value } => {
                write!(f, "power value {value} W is negative or non-finite")
            }
            PowerError::InvalidGrid { reason } => write!(f, "invalid frequency grid: {reason}"),
            PowerError::InvalidScalingExponent { beta } => {
                write!(f, "scaling exponent {beta} is outside [0, 1]")
            }
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            PowerError::InvalidFrequency { value: -1.0 },
            PowerError::UnsupportedStatePair { cpu: "C0(a)", platform: "S3" },
            PowerError::InvalidSleepProgram { reason: "x".into() },
            PowerError::InvalidPower { value: f64::NAN },
            PowerError::InvalidGrid { reason: "y".into() },
            PowerError::InvalidScalingExponent { beta: 2.0 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with("cpu"));
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(PowerError::InvalidFrequency { value: 2.0 });
        assert!(e.to_string().contains("2"));
    }
}
