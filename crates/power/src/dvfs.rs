use crate::error::PowerError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A DVFS clock-frequency scaling factor `f ∈ (0, 1]`.
///
/// The paper normalizes frequency so `f = 1` is the part's maximum speed;
/// `f = 0` would stop the server entirely, so zero is excluded. Under the
/// linear-DVFS assumption voltage tracks `f`, which is handled by
/// [`crate::VoltageLaw`], not here.
///
/// ```
/// use sleepscale_power::Frequency;
/// let f = Frequency::new(0.42)?;
/// assert_eq!(f.get(), 0.42);
/// assert!(Frequency::new(0.0).is_err());
/// assert!(Frequency::new(1.2).is_err());
/// # Ok::<(), sleepscale_power::PowerError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// The maximum setting, `f = 1`.
    pub const MAX: Frequency = Frequency(1.0);

    /// Checked construction.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidFrequency`] unless `0 < value <= 1`.
    pub fn new(value: f64) -> Result<Frequency, PowerError> {
        if value.is_finite() && value > 0.0 && value <= 1.0 {
            Ok(Frequency(value))
        } else {
            Err(PowerError::InvalidFrequency { value })
        }
    }

    /// Clamps an arbitrary value into `(0, 1]` (values `<= 0` become the
    /// smallest representable setting `1e-6`; values above 1 become 1).
    pub fn saturating(value: f64) -> Frequency {
        if !value.is_finite() || value <= 0.0 {
            Frequency(1e-6)
        } else if value > 1.0 {
            Frequency(1.0)
        } else {
            Frequency(value)
        }
    }

    /// The raw scaling factor.
    pub fn get(self) -> f64 {
        self.0
    }

    /// Multiplies the frequency by `factor`, clamping into `(0, 1]`. Used
    /// by the over-provisioning guard band (`f ← f · (1 + α)`).
    pub fn scaled_by(self, factor: f64) -> Frequency {
        Frequency::saturating(self.0 * factor)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f={:.3}", self.0)
    }
}

impl sleepscale_journal::Snapshot for Frequency {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        w.put_f64(self.0);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<Frequency, sleepscale_journal::CodecError> {
        Frequency::new(r.get_f64()?)
            .map_err(|e| sleepscale_journal::CodecError::Invalid(e.to_string()))
    }
}

impl Eq for Frequency {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Frequency {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Frequencies are finite by construction, so the derived
        // PartialOrd (IEEE order) and this total order agree.
        self.0.partial_cmp(&other.0).expect("frequencies are finite")
    }
}

/// An inclusive arithmetic grid of candidate frequencies.
///
/// Section 4.1 sweeps `f` from the stability limit `ρ + 0.01` up to 1 in
/// steps of 0.01, noting that a real part exposes roughly ten discrete
/// settings. The grid iterator always includes the upper endpoint so the
/// `f = 1` baseline is representable.
///
/// ```
/// use sleepscale_power::FrequencyGrid;
/// let grid = FrequencyGrid::new(0.2, 1.0, 0.2)?;
/// let fs: Vec<f64> = grid.iter().map(|f| f.get()).collect();
/// assert_eq!(fs.len(), 5);
/// assert_eq!(*fs.last().unwrap(), 1.0);
/// # Ok::<(), sleepscale_power::PowerError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyGrid {
    min: f64,
    max: f64,
    step: f64,
}

impl FrequencyGrid {
    /// Builds a grid over `[min, max]` with spacing `step`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidGrid`] if the bounds are not inside
    /// `(0, 1]`, `min > max`, or `step` is not strictly positive.
    pub fn new(min: f64, max: f64, step: f64) -> Result<FrequencyGrid, PowerError> {
        if !(min.is_finite() && max.is_finite() && step.is_finite()) {
            return Err(PowerError::InvalidGrid { reason: "non-finite bounds".into() });
        }
        if min <= 0.0 || max > 1.0 || min > max {
            return Err(PowerError::InvalidGrid {
                reason: format!("bounds [{min}, {max}] must satisfy 0 < min <= max <= 1"),
            });
        }
        if step <= 0.0 {
            return Err(PowerError::InvalidGrid { reason: format!("step {step} must be > 0") });
        }
        Ok(FrequencyGrid { min, max, step })
    }

    /// The paper's fine sweep for a given utilization: `ρ + 0.01` up to 1
    /// in steps of 0.01 (used to draw smooth bowls).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidGrid`] when `rho >= 0.99` leaves no
    /// stable frequency.
    pub fn paper_sweep(rho: f64) -> Result<FrequencyGrid, PowerError> {
        FrequencyGrid::new(rho + 0.01, 1.0, 0.01)
    }

    /// A realistic ~10-setting grid (the paper notes real systems expose
    /// about ten distinct frequencies): `max(0.1, ρ+0.05)` to 1 in steps
    /// of 0.05 truncated to at most the stable region.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidGrid`] when no stable frequency exists.
    pub fn realistic(rho: f64) -> Result<FrequencyGrid, PowerError> {
        let min = (rho + 0.05).clamp(0.1, 1.0);
        FrequencyGrid::new(min, 1.0, 0.05)
    }

    /// Lower bound.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper bound.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Grid spacing.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Iterates the grid points from low to high; the final point is always
    /// exactly `max`.
    pub fn iter(&self) -> impl Iterator<Item = Frequency> + '_ {
        let n = ((self.max - self.min) / self.step).floor() as usize;
        let (min, max, step) = (self.min, self.max, self.step);
        let eps = step * 1e-9;
        (0..=n)
            .map(move |i| min + i as f64 * step)
            .filter(move |v| *v < max - eps)
            .chain(std::iter::once(max))
            .map(Frequency::saturating)
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// True when the grid is a single point.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_validation() {
        assert!(Frequency::new(0.5).is_ok());
        assert!(Frequency::new(1.0).is_ok());
        assert!(Frequency::new(0.0).is_err());
        assert!(Frequency::new(-0.1).is_err());
        assert!(Frequency::new(1.0001).is_err());
        assert!(Frequency::new(f64::NAN).is_err());
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Frequency::saturating(2.0).get(), 1.0);
        assert!(Frequency::saturating(-3.0).get() > 0.0);
        assert_eq!(Frequency::saturating(0.7).get(), 0.7);
        assert!(Frequency::saturating(f64::NAN).get() > 0.0);
    }

    #[test]
    fn scaled_by_over_provisioning() {
        let f = Frequency::new(0.8).unwrap();
        assert!((f.scaled_by(1.35).get() - 1.0).abs() < 1e-12);
        let f = Frequency::new(0.4).unwrap();
        assert!((f.scaled_by(1.35).get() - 0.54).abs() < 1e-12);
    }

    #[test]
    fn grid_includes_endpoints() {
        let g = FrequencyGrid::new(0.11, 1.0, 0.01).unwrap();
        let pts: Vec<f64> = g.iter().map(|f| f.get()).collect();
        assert!((pts[0] - 0.11).abs() < 1e-9);
        assert!((pts.last().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(pts.len(), 90);
    }

    #[test]
    fn grid_no_duplicate_endpoint() {
        let g = FrequencyGrid::new(0.5, 1.0, 0.25).unwrap();
        let pts: Vec<f64> = g.iter().map(|f| f.get()).collect();
        assert_eq!(pts.len(), 3);
        assert!((pts[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn grid_single_point() {
        let g = FrequencyGrid::new(1.0, 1.0, 0.1).unwrap();
        let pts: Vec<f64> = g.iter().map(|f| f.get()).collect();
        assert_eq!(pts, vec![1.0]);
        assert!(!g.is_empty());
    }

    #[test]
    fn paper_sweep_respects_stability_margin() {
        let g = FrequencyGrid::paper_sweep(0.3).unwrap();
        assert!((g.min() - 0.31).abs() < 1e-12);
        assert!(FrequencyGrid::paper_sweep(1.2).is_err());
    }

    #[test]
    fn realistic_grid_is_coarse() {
        let g = FrequencyGrid::realistic(0.3).unwrap();
        assert!(g.len() <= 15);
    }

    #[test]
    fn invalid_grids() {
        assert!(FrequencyGrid::new(0.0, 1.0, 0.1).is_err());
        assert!(FrequencyGrid::new(0.5, 0.4, 0.1).is_err());
        assert!(FrequencyGrid::new(0.5, 1.0, 0.0).is_err());
        assert!(FrequencyGrid::new(0.5, 1.1, 0.1).is_err());
    }

    #[test]
    fn frequency_ordering() {
        let a = Frequency::new(0.3).unwrap();
        let b = Frequency::new(0.7).unwrap();
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }
}
