//! Canonical configurations: the Xeon numbers of Table 2, the wake-up
//! latency choices of Section 4.2, the five standard single-stage sleep
//! policies, and an Atom-class substitute.

use crate::cpu::CpuPowerModel;
use crate::platform::PlatformPowerModel;
use crate::sleep::{SleepProgram, SleepStage};
use crate::system::{SystemPowerModel, SystemState};

/// Wake-up latency (seconds) from `C0(i)S0(i)` — zero (Table 4).
pub const WAKE_C0I_S0I: f64 = 0.0;
/// Wake-up latency (seconds) from `C1S0(i)` — 10 µs (Section 4.2 choice
/// from Table 4's 1–10 µs range).
pub const WAKE_C1_S0I: f64 = 10e-6;
/// Wake-up latency (seconds) from `C3S0(i)` — 100 µs.
pub const WAKE_C3_S0I: f64 = 100e-6;
/// Wake-up latency (seconds) from `C6S0(i)` — 1 ms.
pub const WAKE_C6_S0I: f64 = 1e-3;
/// Wake-up latency (seconds) from `C6S3` — 1 s.
pub const WAKE_C6_S3: f64 = 1.0;

/// The standard `C0(i)S0(i)` stage (τ = 0, w = 0).
pub const C0I_S0I: SleepStage = SleepStage::from_raw_parts(SystemState::C0I_S0I, 0.0, WAKE_C0I_S0I);
/// The standard `C1S0(i)` stage (τ = 0, w = 10 µs).
pub const C1_S0I: SleepStage = SleepStage::from_raw_parts(SystemState::C1_S0I, 0.0, WAKE_C1_S0I);
/// The standard `C3S0(i)` stage (τ = 0, w = 100 µs).
pub const C3_S0I: SleepStage = SleepStage::from_raw_parts(SystemState::C3_S0I, 0.0, WAKE_C3_S0I);
/// The standard `C6S0(i)` stage (τ = 0, w = 1 ms).
pub const C6_S0I: SleepStage = SleepStage::from_raw_parts(SystemState::C6_S0I, 0.0, WAKE_C6_S0I);
/// The standard `C6S3` stage (τ = 0, w = 1 s).
pub const C6_S3: SleepStage = SleepStage::from_raw_parts(SystemState::C6_S3, 0.0, WAKE_C6_S3);

/// The default wake-up latency (seconds) for each low-power state.
pub fn default_wake_latency(state: SystemState) -> f64 {
    match state {
        SystemState::C0I_S0I => WAKE_C0I_S0I,
        SystemState::C1_S0I => WAKE_C1_S0I,
        SystemState::C3_S0I => WAKE_C3_S0I,
        SystemState::C6_S0I => WAKE_C6_S0I,
        SystemState::C6_S3 => WAKE_C6_S3,
        _ => 0.0,
    }
}

/// An immediate (`τ = 0`) stage for `state` with its default wake latency.
pub fn immediate_stage(state: SystemState) -> SleepStage {
    SleepStage::new(state, 0.0, default_wake_latency(state))
        .expect("preset states form valid stages")
}

/// The five standard single-stage immediate sleep programs, shallowest to
/// deepest — the candidate set Figures 1, 2, 6 and 10 draw from.
pub fn standard_programs() -> Vec<SleepProgram> {
    SystemState::LOW_POWER_LADDER
        .iter()
        .map(|s| SleepProgram::immediate(immediate_stage(*s)))
        .collect()
}

/// The five-stage sequential cascade of engineering lesson 5:
/// `C0(i)S0(i) → C1S0(i) → C3S0(i) → C6S0(i) → C6S3` entered one after
/// another with the given inter-stage dwell (seconds).
pub fn sequential_cascade(dwell: f64) -> SleepProgram {
    let stages = SystemState::LOW_POWER_LADDER
        .iter()
        .enumerate()
        .map(|(i, s)| {
            SleepStage::new(*s, dwell * i as f64, default_wake_latency(*s))
                .expect("cascade stages are valid")
        })
        .collect();
    SleepProgram::new(stages).expect("cascade delays strictly increase")
}

/// The full Xeon-class system of Table 2.
pub fn xeon() -> SystemPowerModel {
    SystemPowerModel::new(CpuPowerModel::xeon(), PlatformPowerModel::xeon_platform())
}

/// The Table-2 system but with the platform the paper's *prose* implies
/// (52.7 W idle instead of 60.5 W); see DESIGN.md.
pub fn xeon_prose_variant() -> SystemPowerModel {
    SystemPowerModel::new(CpuPowerModel::xeon(), PlatformPowerModel::xeon_platform_prose_variant())
}

/// An Atom-class substitute: small CPU over the same platform, reproducing
/// the paper's qualitative Atom observations (platform power dominates).
pub fn atom() -> SystemPowerModel {
    SystemPowerModel::new(CpuPowerModel::atom(), PlatformPowerModel::xeon_platform())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvfs::Frequency;

    #[test]
    fn wake_latencies_match_section_4_2() {
        assert_eq!(default_wake_latency(SystemState::C0I_S0I), 0.0);
        assert_eq!(default_wake_latency(SystemState::C1_S0I), 10e-6);
        assert_eq!(default_wake_latency(SystemState::C3_S0I), 100e-6);
        assert_eq!(default_wake_latency(SystemState::C6_S0I), 1e-3);
        assert_eq!(default_wake_latency(SystemState::C6_S3), 1.0);
    }

    #[test]
    fn preset_stage_constants_agree_with_immediate_stage() {
        for (konst, state) in [
            (C0I_S0I, SystemState::C0I_S0I),
            (C1_S0I, SystemState::C1_S0I),
            (C3_S0I, SystemState::C3_S0I),
            (C6_S0I, SystemState::C6_S0I),
            (C6_S3, SystemState::C6_S3),
        ] {
            assert_eq!(konst, immediate_stage(state));
        }
    }

    #[test]
    fn standard_programs_cover_the_ladder_in_order() {
        let programs = standard_programs();
        assert_eq!(programs.len(), 5);
        for (p, s) in programs.iter().zip(SystemState::LOW_POWER_LADDER) {
            assert_eq!(p.stages().len(), 1);
            assert_eq!(p.stages()[0].state(), s);
            assert_eq!(p.stages()[0].enter_after(), 0.0);
        }
    }

    #[test]
    fn cascade_is_ordered_and_wake_latencies_grow() {
        let c = sequential_cascade(0.01);
        assert_eq!(c.stages().len(), 5);
        for pair in c.stages().windows(2) {
            assert!(pair[0].enter_after() < pair[1].enter_after());
            assert!(pair[0].wake_latency() <= pair[1].wake_latency());
        }
    }

    #[test]
    fn atom_cpu_is_small_relative_to_platform() {
        let atom = atom();
        let cpu_peak = atom.cpu().peak_active().as_watts();
        let platform_active =
            atom.platform().power(crate::platform::PlatformState::S0Active).as_watts();
        assert!(cpu_peak * 5.0 < platform_active);
    }

    #[test]
    fn xeon_active_is_250w_at_full_speed() {
        assert_eq!(xeon().active_power(Frequency::MAX).as_watts(), 250.0);
    }

    #[test]
    fn prose_variant_idle_total() {
        let m = xeon_prose_variant();
        let p = m.power(SystemState::C0I_S0I, Frequency::MAX).as_watts();
        assert!((p - (75.0 + 52.7)).abs() < 1e-9);
    }
}
