use crate::dvfs::Frequency;
use crate::error::PowerError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a job's service time depends on the DVFS frequency setting
/// (Section 3.2 and engineering lesson 6 / Figure 4).
///
/// For a job whose service time is `s` at `f = 1`, the time at setting `f`
/// is `s / f^β`:
///
/// * CPU-bound: `β = 1` — the effective service rate is `µ·f`.
/// * Sub-linear: `β ∈ (0, 1)` — partial sensitivity (Figure 4 uses
///   `µ·f^0.5` and `µ·f^0.2`).
/// * Memory-bound: `β = 0` — service time is frequency-insensitive.
///
/// ```
/// use sleepscale_power::{FrequencyScaling, Frequency};
/// let f = Frequency::new(0.5)?;
/// assert_eq!(FrequencyScaling::CpuBound.service_multiplier(f), 2.0);
/// assert_eq!(FrequencyScaling::MemoryBound.service_multiplier(f), 1.0);
/// let sub = FrequencyScaling::sublinear(0.5)?;
/// assert!((sub.service_multiplier(f) - 2.0_f64.sqrt()).abs() < 1e-12);
/// # Ok::<(), sleepscale_power::PowerError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum FrequencyScaling {
    /// Service rate `µ·f` (`β = 1`).
    #[default]
    CpuBound,
    /// Service rate `µ·f^β` for `β ∈ (0, 1)`.
    Sublinear {
        /// The exponent `β`.
        beta: f64,
    },
    /// Service rate `µ` regardless of `f` (`β = 0`).
    MemoryBound,
}

impl FrequencyScaling {
    /// Checked sub-linear constructor; `beta == 1` collapses to
    /// [`FrequencyScaling::CpuBound`] and `beta == 0` to
    /// [`FrequencyScaling::MemoryBound`].
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidScalingExponent`] unless `0 <= beta <= 1`.
    pub fn sublinear(beta: f64) -> Result<FrequencyScaling, PowerError> {
        if !beta.is_finite() || !(0.0..=1.0).contains(&beta) {
            return Err(PowerError::InvalidScalingExponent { beta });
        }
        Ok(if beta == 0.0 {
            FrequencyScaling::MemoryBound
        } else if beta == 1.0 {
            FrequencyScaling::CpuBound
        } else {
            FrequencyScaling::Sublinear { beta }
        })
    }

    /// The exponent `β`.
    pub fn beta(self) -> f64 {
        match self {
            FrequencyScaling::CpuBound => 1.0,
            FrequencyScaling::Sublinear { beta } => beta,
            FrequencyScaling::MemoryBound => 0.0,
        }
    }

    /// Factor by which service time stretches at frequency `f`
    /// (`1 / f^β >= 1`).
    pub fn service_multiplier(self, f: Frequency) -> f64 {
        match self {
            FrequencyScaling::CpuBound => 1.0 / f.get(),
            FrequencyScaling::Sublinear { beta } => f.get().powf(-beta),
            FrequencyScaling::MemoryBound => 1.0,
        }
    }

    /// Effective service rate `µ·f^β` given the full-speed rate `mu`.
    pub fn effective_rate(self, mu: f64, f: Frequency) -> f64 {
        mu / self.service_multiplier(f)
    }

    /// The smallest frequency keeping the queue stable at utilization
    /// `rho` (i.e. `ρ / f^β < 1`), or `None` when even `f = 1` is unstable
    /// (`rho >= 1`). Memory-bound workloads are stable at any frequency
    /// when `rho < 1`.
    pub fn stability_floor(self, rho: f64) -> Option<f64> {
        if rho >= 1.0 {
            return None;
        }
        match self {
            FrequencyScaling::MemoryBound => Some(0.0),
            _ => Some(rho.powf(1.0 / self.beta())),
        }
    }
}

impl fmt::Display for FrequencyScaling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrequencyScaling::CpuBound => write!(f, "µf (CPU-bound)"),
            FrequencyScaling::Sublinear { beta } => write!(f, "µf^{beta}"),
            FrequencyScaling::MemoryBound => write!(f, "µ (memory-bound)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> Frequency {
        Frequency::new(v).unwrap()
    }

    #[test]
    fn cpu_bound_multiplier_is_reciprocal() {
        assert!((FrequencyScaling::CpuBound.service_multiplier(f(0.25)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_is_insensitive() {
        for v in [0.1, 0.5, 1.0] {
            assert_eq!(FrequencyScaling::MemoryBound.service_multiplier(f(v)), 1.0);
        }
    }

    #[test]
    fn sublinear_interpolates() {
        let s = FrequencyScaling::sublinear(0.2).unwrap();
        let m = s.service_multiplier(f(0.5));
        assert!(m > 1.0 && m < 2.0);
        assert!((m - 0.5_f64.powf(-0.2)).abs() < 1e-12);
    }

    #[test]
    fn sublinear_collapses_at_edges() {
        assert_eq!(FrequencyScaling::sublinear(1.0).unwrap(), FrequencyScaling::CpuBound);
        assert_eq!(FrequencyScaling::sublinear(0.0).unwrap(), FrequencyScaling::MemoryBound);
        assert!(FrequencyScaling::sublinear(1.5).is_err());
        assert!(FrequencyScaling::sublinear(-0.1).is_err());
    }

    #[test]
    fn effective_rate_matches_figure4_labels() {
        // DNS-like: mu = 1/0.194.
        let mu = 1.0 / 0.194;
        let half = f(0.5);
        assert!((FrequencyScaling::CpuBound.effective_rate(mu, half) - mu * 0.5).abs() < 1e-12);
        let s = FrequencyScaling::sublinear(0.5).unwrap();
        assert!((s.effective_rate(mu, half) - mu * 0.5_f64.sqrt()).abs() < 1e-12);
        assert!((FrequencyScaling::MemoryBound.effective_rate(mu, half) - mu).abs() < 1e-12);
    }

    #[test]
    fn stability_floor() {
        assert!((FrequencyScaling::CpuBound.stability_floor(0.3).unwrap() - 0.3).abs() < 1e-12);
        let s = FrequencyScaling::sublinear(0.5).unwrap();
        assert!((s.stability_floor(0.25).unwrap() - 0.0625).abs() < 1e-12);
        assert_eq!(FrequencyScaling::MemoryBound.stability_floor(0.99).unwrap(), 0.0);
        assert!(FrequencyScaling::CpuBound.stability_floor(1.0).is_none());
    }

    #[test]
    fn display_matches_figure4_legend() {
        assert_eq!(FrequencyScaling::CpuBound.to_string(), "µf (CPU-bound)");
        assert_eq!(FrequencyScaling::sublinear(0.5).unwrap().to_string(), "µf^0.5");
        assert_eq!(FrequencyScaling::MemoryBound.to_string(), "µ (memory-bound)");
    }
}
