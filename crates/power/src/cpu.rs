use crate::dvfs::Frequency;
use crate::error::PowerError;
use crate::units::Watts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// CPU power states (C-states), following Table 1 of the paper.
///
/// `C0(a)` is the operating active state (DVFS adjusts voltage and
/// frequency); `C0(i)` is operating-idle (no work, voltage/frequency held at
/// the last DVFS setting); `C1` halts the clock; `C3` flushes caches and
/// stops the clock; `C6` saves architectural state to RAM and drops core
/// voltage to zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CpuState {
    /// `C0(a)`: operating, actively executing.
    C0Active,
    /// `C0(i)`: operating but idle; clocks still running.
    C0Idle,
    /// `C1`: halt — clock gated, voltage held.
    C1,
    /// `C3`: sleep — caches flushed, clock stopped, architectural state kept.
    C3,
    /// `C6`: deep sleep — state saved to RAM, core voltage at zero.
    C6,
}

impl CpuState {
    /// All states in increasing sleep depth.
    pub const ALL: [CpuState; 5] =
        [CpuState::C0Active, CpuState::C0Idle, CpuState::C1, CpuState::C3, CpuState::C6];

    /// Canonical short name used in the paper (e.g. `"C0(a)"`).
    pub fn name(self) -> &'static str {
        match self {
            CpuState::C0Active => "C0(a)",
            CpuState::C0Idle => "C0(i)",
            CpuState::C1 => "C1",
            CpuState::C3 => "C3",
            CpuState::C6 => "C6",
        }
    }

    /// True if the CPU is in an operating (C0) state.
    pub fn is_operating(self) -> bool {
        matches!(self, CpuState::C0Active | CpuState::C0Idle)
    }

    /// Sleep depth used for ordering: deeper states save more power and
    /// take longer to wake.
    pub fn depth(self) -> u8 {
        match self {
            CpuState::C0Active => 0,
            CpuState::C0Idle => 1,
            CpuState::C1 => 2,
            CpuState::C3 => 3,
            CpuState::C6 => 4,
        }
    }
}

impl fmt::Display for CpuState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// How supply voltage follows the DVFS frequency setting.
///
/// The paper assumes *linear* DVFS — voltage proportional to frequency — so
/// dynamic power (`∝ V²f`) scales cubically with `f`. A constant-voltage
/// law is provided for sensitivity studies on parts whose voltage floor
/// dominates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum VoltageLaw {
    /// `V ∝ f` (the paper's assumption; dynamic power `∝ f³`).
    #[default]
    LinearWithFrequency,
    /// `V` fixed at the value used at `f = 1` (dynamic power `∝ f`).
    Constant,
}

impl VoltageLaw {
    /// Normalized squared voltage `V²` at scaling factor `f` (with `V = 1`
    /// at `f = 1`).
    pub fn voltage_squared(self, f: Frequency) -> f64 {
        match self {
            VoltageLaw::LinearWithFrequency => f.get() * f.get(),
            VoltageLaw::Constant => 1.0,
        }
    }
}

/// Per-C-state CPU power model (Table 2, "CPU×1" row).
///
/// Frequency-sensitive states take coefficients multiplying the normalized
/// voltage/frequency terms:
///
/// * `C0(a)` draws `active_coeff · V² · f` watts,
/// * `C0(i)` draws `idle_coeff · V² · f` watts (clocks still toggling),
/// * `C1` draws `halt_coeff · V²` watts (clock gated, leakage only),
/// * `C3` and `C6` draw fixed watts.
///
/// ```
/// use sleepscale_power::{CpuPowerModel, CpuState, Frequency};
/// let cpu = CpuPowerModel::xeon();
/// let f = Frequency::MAX;
/// assert_eq!(cpu.power(CpuState::C0Active, f).as_watts(), 130.0);
/// assert_eq!(cpu.power(CpuState::C6, f).as_watts(), 15.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuPowerModel {
    active_coeff: f64,
    idle_coeff: f64,
    halt_coeff: f64,
    sleep_watts: f64,
    deep_sleep_watts: f64,
    voltage_law: VoltageLaw,
}

impl CpuPowerModel {
    /// Builds a model from the five Table-2 style parameters.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidPower`] if any parameter is negative or
    /// non-finite.
    pub fn new(
        active_coeff: f64,
        idle_coeff: f64,
        halt_coeff: f64,
        sleep_watts: f64,
        deep_sleep_watts: f64,
        voltage_law: VoltageLaw,
    ) -> Result<CpuPowerModel, PowerError> {
        for v in [active_coeff, idle_coeff, halt_coeff, sleep_watts, deep_sleep_watts] {
            if !v.is_finite() || v < 0.0 {
                return Err(PowerError::InvalidPower { value: v });
            }
        }
        Ok(CpuPowerModel {
            active_coeff,
            idle_coeff,
            halt_coeff,
            sleep_watts,
            deep_sleep_watts,
            voltage_law,
        })
    }

    /// The Xeon E5 family numbers from Table 2:
    /// `130V²f`, `75V²f`, `47V²`, `22 W`, `15 W` with linear DVFS.
    pub fn xeon() -> CpuPowerModel {
        CpuPowerModel::new(130.0, 75.0, 47.0, 22.0, 15.0, VoltageLaw::LinearWithFrequency)
            .expect("xeon constants are valid")
    }

    /// An Atom-class substitute (see DESIGN.md): roughly one order of
    /// magnitude less CPU power over the same state ladder. The paper uses
    /// Atom numbers from Guevara et al. \[12\] only for qualitative remarks;
    /// these values reproduce the property that matters — CPU power is
    /// small relative to platform power.
    pub fn atom() -> CpuPowerModel {
        CpuPowerModel::new(10.0, 6.0, 3.5, 1.5, 0.8, VoltageLaw::LinearWithFrequency)
            .expect("atom constants are valid")
    }

    /// Power drawn in `state` at DVFS setting `f`.
    pub fn power(&self, state: CpuState, f: Frequency) -> Watts {
        let v2 = self.voltage_law.voltage_squared(f);
        let watts = match state {
            CpuState::C0Active => self.active_coeff * v2 * f.get(),
            CpuState::C0Idle => self.idle_coeff * v2 * f.get(),
            CpuState::C1 => self.halt_coeff * v2,
            CpuState::C3 => self.sleep_watts,
            CpuState::C6 => self.deep_sleep_watts,
        };
        Watts::new(watts)
    }

    /// The voltage law in effect.
    pub fn voltage_law(&self) -> VoltageLaw {
        self.voltage_law
    }

    /// Peak (f = 1) active power.
    pub fn peak_active(&self) -> Watts {
        self.power(CpuState::C0Active, Frequency::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(v: f64) -> Frequency {
        Frequency::new(v).unwrap()
    }

    #[test]
    fn xeon_matches_table2_at_full_frequency() {
        let m = CpuPowerModel::xeon();
        assert_eq!(m.power(CpuState::C0Active, Frequency::MAX).as_watts(), 130.0);
        assert_eq!(m.power(CpuState::C0Idle, Frequency::MAX).as_watts(), 75.0);
        assert_eq!(m.power(CpuState::C1, Frequency::MAX).as_watts(), 47.0);
        assert_eq!(m.power(CpuState::C3, Frequency::MAX).as_watts(), 22.0);
        assert_eq!(m.power(CpuState::C6, Frequency::MAX).as_watts(), 15.0);
    }

    #[test]
    fn active_power_scales_cubically() {
        let m = CpuPowerModel::xeon();
        let p = m.power(CpuState::C0Active, f(0.5)).as_watts();
        assert!((p - 130.0 * 0.125).abs() < 1e-12);
    }

    #[test]
    fn halt_power_scales_quadratically() {
        // C1 gates the clock, so only the V^2 term remains.
        let m = CpuPowerModel::xeon();
        let p = m.power(CpuState::C1, f(0.5)).as_watts();
        assert!((p - 47.0 * 0.25).abs() < 1e-12);
    }

    #[test]
    fn deep_states_are_frequency_insensitive() {
        let m = CpuPowerModel::xeon();
        for s in [CpuState::C3, CpuState::C6] {
            assert_eq!(m.power(s, f(0.2)), m.power(s, Frequency::MAX));
        }
    }

    #[test]
    fn constant_voltage_law_gives_linear_dynamic_power() {
        let m = CpuPowerModel::new(100.0, 50.0, 20.0, 10.0, 5.0, VoltageLaw::Constant).unwrap();
        let p = m.power(CpuState::C0Active, f(0.5)).as_watts();
        assert!((p - 50.0).abs() < 1e-12);
    }

    #[test]
    fn deeper_states_draw_less_power_at_full_frequency() {
        let m = CpuPowerModel::xeon();
        let powers: Vec<f64> =
            CpuState::ALL.iter().map(|s| m.power(*s, Frequency::MAX).as_watts()).collect();
        for w in powers.windows(2) {
            assert!(w[0] > w[1], "expected strictly decreasing power: {powers:?}");
        }
    }

    #[test]
    fn rejects_negative_parameters() {
        let e = CpuPowerModel::new(-1.0, 0.0, 0.0, 0.0, 0.0, VoltageLaw::default());
        assert!(matches!(e, Err(PowerError::InvalidPower { .. })));
    }

    #[test]
    fn state_metadata() {
        assert_eq!(CpuState::C0Active.name(), "C0(a)");
        assert!(CpuState::C0Idle.is_operating());
        assert!(!CpuState::C3.is_operating());
        assert!(CpuState::C6.depth() > CpuState::C1.depth());
        assert_eq!(CpuState::C6.to_string(), "C6");
    }
}
