use crate::dvfs::Frequency;
use crate::sleep::SleepProgram;
use serde::{Deserialize, Serialize};
use sleepscale_journal::Snapshot;
use std::fmt;

/// A joint power-management policy: the DVFS operating [`Frequency`] plus
/// the [`SleepProgram`] executed whenever the queue empties.
///
/// The paper's central claim (engineering lesson 1) is that these two
/// choices must be optimized *jointly* — neither the best frequency nor
/// the best sleep state is independent of the other.
///
/// ```
/// use sleepscale_power::prelude::*;
/// let policy = Policy::new(
///     Frequency::new(0.42)?,
///     SleepProgram::immediate(presets::C6_S3),
/// );
/// assert_eq!(policy.label(), "f=0.420 C6S3");
/// # Ok::<(), sleepscale_power::PowerError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Policy {
    frequency: Frequency,
    program: SleepProgram,
}

impl Policy {
    /// Pairs a frequency with a sleep program.
    pub fn new(frequency: Frequency, program: SleepProgram) -> Policy {
        Policy { frequency, program }
    }

    /// The paper's baseline: run flat out (`f = 1`) and never sleep.
    pub fn full_speed_no_sleep() -> Policy {
        Policy { frequency: Frequency::MAX, program: SleepProgram::never_sleep() }
    }

    /// The race-to-halt family: `f = 1`, drop into `stage` immediately on
    /// queue empty (Section 6.1's R2H baselines).
    pub fn race_to_halt(stage: crate::sleep::SleepStage) -> Policy {
        Policy { frequency: Frequency::MAX, program: SleepProgram::immediate(stage) }
    }

    /// The operating frequency.
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// The idle-time sleep program.
    pub fn program(&self) -> &SleepProgram {
        &self.program
    }

    /// Returns a copy with the frequency replaced (used by the
    /// over-provisioning guard band).
    pub fn with_frequency(&self, frequency: Frequency) -> Policy {
        Policy { frequency, program: self.program.clone() }
    }

    /// Short display label, e.g. `"f=0.420 C6S3"`.
    pub fn label(&self) -> String {
        format!("f={:.3} {}", self.frequency.get(), self.program.label())
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl Snapshot for Policy {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        self.frequency.snapshot(w);
        self.program.snapshot(w);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<Policy, sleepscale_journal::CodecError> {
        let frequency = Frequency::restore(r)?;
        let program = SleepProgram::restore(r)?;
        Ok(Policy::new(frequency, program))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use crate::sleep::SleepStage;
    use crate::system::SystemState;

    #[test]
    fn full_speed_baseline() {
        let p = Policy::full_speed_no_sleep();
        assert_eq!(p.frequency(), Frequency::MAX);
        assert!(p.program().is_never_sleep());
    }

    #[test]
    fn race_to_halt_runs_at_max_frequency() {
        let p = Policy::race_to_halt(presets::C6_S0I);
        assert_eq!(p.frequency(), Frequency::MAX);
        assert_eq!(p.program().stages().len(), 1);
        assert_eq!(p.program().stages()[0].state(), SystemState::C6_S0I);
        assert_eq!(p.program().stages()[0].enter_after(), 0.0);
    }

    #[test]
    fn with_frequency_keeps_program() {
        let p = Policy::new(
            Frequency::new(0.5).unwrap(),
            SleepProgram::immediate(SleepStage::new(SystemState::C3_S0I, 0.0, 1e-4).unwrap()),
        );
        let q = p.with_frequency(Frequency::new(0.8).unwrap());
        assert_eq!(q.frequency().get(), 0.8);
        assert_eq!(q.program(), p.program());
    }

    #[test]
    fn label_format() {
        let p = Policy::full_speed_no_sleep();
        assert_eq!(p.label(), "f=1.000 C0(a)S0(a)");
        assert_eq!(p.to_string(), p.label());
    }
}
