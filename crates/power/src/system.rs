use crate::cpu::{CpuPowerModel, CpuState};
use crate::dvfs::Frequency;
use crate::error::PowerError;
use crate::platform::{PlatformPowerModel, PlatformState};
use crate::units::Watts;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated combined CPU + platform state such as `C0(i)S0(i)` or `C6S3`.
///
/// Table 3 restricts the legal pairs: `S0(a)` only with `C0(a)`, `S0(i)`
/// with every other C-state, and `S3` only with `C6`. Use
/// [`SystemState::new`] for checked construction or the provided constants
/// for the pairs the paper studies.
///
/// ```
/// use sleepscale_power::{SystemState, CpuState, PlatformState};
/// let s = SystemState::new(CpuState::C6, PlatformState::S3)?;
/// assert_eq!(s.to_string(), "C6S3");
/// assert!(SystemState::new(CpuState::C0Active, PlatformState::S3).is_err());
/// # Ok::<(), sleepscale_power::PowerError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemState {
    cpu: CpuState,
    platform: PlatformState,
}

impl SystemState {
    /// `C0(a)S0(a)`: the active operating state.
    pub const C0A_S0A: SystemState =
        SystemState { cpu: CpuState::C0Active, platform: PlatformState::S0Active };
    /// `C0(i)S0(i)`: operating-idle.
    pub const C0I_S0I: SystemState =
        SystemState { cpu: CpuState::C0Idle, platform: PlatformState::S0Idle };
    /// `C1S0(i)`: halt.
    pub const C1_S0I: SystemState =
        SystemState { cpu: CpuState::C1, platform: PlatformState::S0Idle };
    /// `C3S0(i)`: sleep.
    pub const C3_S0I: SystemState =
        SystemState { cpu: CpuState::C3, platform: PlatformState::S0Idle };
    /// `C6S0(i)`: deep CPU sleep, platform idle.
    pub const C6_S0I: SystemState =
        SystemState { cpu: CpuState::C6, platform: PlatformState::S0Idle };
    /// `C6S3`: deep CPU sleep plus platform sleep.
    pub const C6_S3: SystemState = SystemState { cpu: CpuState::C6, platform: PlatformState::S3 };

    /// The five low-power states the paper's policies choose between,
    /// ordered from shallowest to deepest.
    pub const LOW_POWER_LADDER: [SystemState; 5] = [
        SystemState::C0I_S0I,
        SystemState::C1_S0I,
        SystemState::C3_S0I,
        SystemState::C6_S0I,
        SystemState::C6_S3,
    ];

    /// Checked construction of a (C, S) pair.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::UnsupportedStatePair`] for combinations Table 3
    /// forbids.
    pub fn new(cpu: CpuState, platform: PlatformState) -> Result<SystemState, PowerError> {
        let legal = match platform {
            PlatformState::S0Active => cpu == CpuState::C0Active,
            PlatformState::S0Idle => cpu != CpuState::C0Active,
            PlatformState::S3 => cpu == CpuState::C6,
        };
        if legal {
            Ok(SystemState { cpu, platform })
        } else {
            Err(PowerError::UnsupportedStatePair { cpu: cpu.name(), platform: platform.name() })
        }
    }

    /// The CPU half of the pair.
    pub fn cpu(self) -> CpuState {
        self.cpu
    }

    /// The platform half of the pair.
    pub fn platform(self) -> PlatformState {
        self.platform
    }

    /// True for the active operating state `C0(a)S0(a)`.
    pub fn is_active(self) -> bool {
        self == SystemState::C0A_S0A
    }

    /// Paper-style label, e.g. `"C6S0(i)"`.
    pub fn label(self) -> String {
        format!("{}{}", self.cpu.name(), self.platform.name())
    }
}

impl fmt::Display for SystemState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.cpu.name(), self.platform.name())
    }
}

impl sleepscale_journal::Snapshot for SystemState {
    fn snapshot(&self, w: &mut sleepscale_journal::ByteWriter) {
        // Both halves serialize as their position in the canonical
        // ladder (CpuState depth doubles as that index).
        w.put_u8(self.cpu.depth());
        let platform =
            PlatformState::ALL.iter().position(|p| *p == self.platform).unwrap_or_default();
        w.put_u8(platform as u8);
    }

    fn restore(
        r: &mut sleepscale_journal::ByteReader<'_>,
    ) -> Result<SystemState, sleepscale_journal::CodecError> {
        let cpu_idx = r.get_u8()? as usize;
        let platform_idx = r.get_u8()? as usize;
        let cpu = *CpuState::ALL.get(cpu_idx).ok_or_else(|| {
            sleepscale_journal::CodecError::Invalid(format!("cpu state index {cpu_idx}"))
        })?;
        let platform = *PlatformState::ALL.get(platform_idx).ok_or_else(|| {
            sleepscale_journal::CodecError::Invalid(format!("platform state index {platform_idx}"))
        })?;
        // Checked construction re-validates Table 3 legality.
        SystemState::new(cpu, platform)
            .map_err(|e| sleepscale_journal::CodecError::Invalid(e.to_string()))
    }
}

/// Whole-system power model: CPU model + platform model.
///
/// The power of a combined state is the sum of its halves (Section 3.1).
///
/// ```
/// use sleepscale_power::prelude::*;
/// let m = presets::xeon();
/// let f = Frequency::MAX;
/// // C6S3 = 15 W CPU + 13.1 W platform.
/// assert!((m.power(SystemState::C6_S3, f).as_watts() - 28.1).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemPowerModel {
    cpu: CpuPowerModel,
    platform: PlatformPowerModel,
}

impl SystemPowerModel {
    /// Combines a CPU and a platform model.
    pub fn new(cpu: CpuPowerModel, platform: PlatformPowerModel) -> SystemPowerModel {
        SystemPowerModel { cpu, platform }
    }

    /// Total power in `state` at DVFS setting `f`.
    ///
    /// `f` only matters for the frequency-sensitive CPU states (`C0(a)`,
    /// `C0(i)`, `C1`); deep states and the platform are insensitive.
    pub fn power(&self, state: SystemState, f: Frequency) -> Watts {
        self.cpu.power(state.cpu(), f) + self.platform.power(state.platform())
    }

    /// Power in the active state `C0(a)S0(a)` at `f` — this is the paper's
    /// `P0 f³ + platform` and also the (conservative) power charged during
    /// wake-up transitions.
    pub fn active_power(&self, f: Frequency) -> Watts {
        self.power(SystemState::C0A_S0A, f)
    }

    /// The CPU half.
    pub fn cpu(&self) -> &CpuPowerModel {
        &self.cpu
    }

    /// The platform half.
    pub fn platform(&self) -> &PlatformPowerModel {
        &self.platform
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SystemPowerModel {
        SystemPowerModel::new(CpuPowerModel::xeon(), PlatformPowerModel::xeon_platform())
    }

    fn f(v: f64) -> Frequency {
        Frequency::new(v).unwrap()
    }

    #[test]
    fn legal_pairs_match_table3() {
        use CpuState::*;
        use PlatformState::*;
        assert!(SystemState::new(C0Active, S0Active).is_ok());
        assert!(SystemState::new(C0Idle, S0Idle).is_ok());
        assert!(SystemState::new(C1, S0Idle).is_ok());
        assert!(SystemState::new(C3, S0Idle).is_ok());
        assert!(SystemState::new(C6, S0Idle).is_ok());
        assert!(SystemState::new(C6, S3).is_ok());

        assert!(SystemState::new(C0Idle, S0Active).is_err());
        assert!(SystemState::new(C0Active, S0Idle).is_err());
        assert!(SystemState::new(C3, S3).is_err());
        assert!(SystemState::new(C0Active, S3).is_err());
    }

    #[test]
    fn combined_power_is_sum_of_halves() {
        let m = model();
        // Paper example (with the Table-2 platform): C0(i)S0(i) = 75 V^2 f + 60.5.
        let p = m.power(SystemState::C0I_S0I, f(1.0)).as_watts();
        assert!((p - (75.0 + 60.5)).abs() < 1e-9);
        let p_half = m.power(SystemState::C0I_S0I, f(0.5)).as_watts();
        assert!((p_half - (75.0 * 0.125 + 60.5)).abs() < 1e-9);
    }

    #[test]
    fn paper_low_power_ladder_values_at_full_frequency() {
        let m = model();
        let expect = [
            (SystemState::C0I_S0I, 135.5),
            (SystemState::C1_S0I, 107.5),
            (SystemState::C3_S0I, 82.5),
            (SystemState::C6_S0I, 75.5),
            (SystemState::C6_S3, 28.1),
        ];
        for (s, w) in expect {
            assert!(
                (m.power(s, Frequency::MAX).as_watts() - w).abs() < 1e-9,
                "state {s} expected {w} W"
            );
        }
    }

    #[test]
    fn ladder_is_monotone_in_power_at_full_frequency() {
        let m = model();
        let powers: Vec<f64> = SystemState::LOW_POWER_LADDER
            .iter()
            .map(|s| m.power(*s, Frequency::MAX).as_watts())
            .collect();
        for w in powers.windows(2) {
            assert!(w[0] > w[1], "ladder must strictly decrease: {powers:?}");
        }
    }

    #[test]
    fn active_power_helper() {
        let m = model();
        assert_eq!(m.active_power(f(1.0)).as_watts(), 250.0);
        let p = m.active_power(f(0.42)).as_watts();
        assert!((p - (130.0 * 0.42_f64.powi(3) + 120.0)).abs() < 1e-9);
    }

    #[test]
    fn labels() {
        assert_eq!(SystemState::C6_S3.label(), "C6S3");
        assert_eq!(SystemState::C0I_S0I.label(), "C0(i)S0(i)");
        assert!(SystemState::C0A_S0A.is_active());
        assert!(!SystemState::C6_S3.is_active());
    }
}
