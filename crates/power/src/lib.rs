//! Power and state models for the SleepScale reproduction.
//!
//! This crate implements the system model of the paper's Section 3.1:
//!
//! * [`CpuState`] — the CPU C-states of Table 1 (`C0(a)`, `C0(i)`, `C1`,
//!   `C3`, `C6`) and [`CpuPowerModel`], which maps a C-state and DVFS
//!   frequency to watts (dynamic power scales cubically in frequency under
//!   linear voltage/frequency scaling).
//! * [`PlatformState`] — the ACPI-style platform S-states of Table 3
//!   (`S0(a)`, `S0(i)`, `S3`) and [`PlatformPowerModel`], built from
//!   per-component power numbers (Table 2).
//! * [`SystemState`] — a validated (C-state, S-state) pair such as
//!   `C0(i)S0(i)` or `C6S3`, and [`SystemPowerModel`] which sums CPU and
//!   platform power.
//! * [`SleepStage`]/[`SleepProgram`] — the paper's low-power-state sequence
//!   `(P_i, τ_i, w_i)`: each idle period the server walks down a ladder of
//!   progressively deeper states, entering stage *i* at `τ_i` seconds after
//!   the queue empties and paying `w_i` seconds of wake-up latency if a job
//!   arrives while it is in stage *i*.
//! * [`Policy`] — a joint DVFS + sleep choice: operating [`Frequency`] plus
//!   a [`SleepProgram`]. SleepScale's whole premise is that these two knobs
//!   must be optimized *together*.
//! * [`FrequencyScaling`] — how service time reacts to frequency
//!   (CPU-bound `µf`, sub-linear `µf^β`, memory-bound `µ`; Section 4.2
//!   lesson 6).
//! * [`presets`] — the Xeon numbers of Table 2, the wake-latency choices of
//!   Section 4.2, and an Atom-class substitute configuration.
//!
//! # Example
//!
//! ```
//! use sleepscale_power::prelude::*;
//!
//! let model = presets::xeon();
//! let f = Frequency::new(0.5)?;
//! // Active power at half frequency: 130 * 0.5^3 + 120 W platform.
//! let p = model.power(SystemState::C0A_S0A, f);
//! assert!((p.as_watts() - (130.0 * 0.125 + 120.0)).abs() < 1e-9);
//!
//! // A policy: run at f = 0.5, drop into C6S3 as soon as the queue empties.
//! let policy = Policy::new(f, SleepProgram::immediate(presets::C6_S3));
//! assert_eq!(policy.program().stages().len(), 1);
//! # Ok::<(), sleepscale_power::PowerError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpu;
mod dvfs;
pub mod ep;
mod error;
mod platform;
mod policy;
pub mod presets;
mod scaling;
mod sleep;
mod system;
mod units;

pub use cpu::{CpuPowerModel, CpuState, VoltageLaw};
pub use dvfs::{Frequency, FrequencyGrid};
pub use ep::{EnergyProportionality, PowerSample};
pub use error::PowerError;
pub use platform::{Component, PlatformPowerModel, PlatformState};
pub use policy::Policy;
pub use scaling::FrequencyScaling;
pub use sleep::{SleepProgram, SleepStage};
pub use system::{SystemPowerModel, SystemState};
pub use units::{Joules, Watts};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::presets;
    pub use crate::{
        Component, CpuPowerModel, CpuState, Frequency, FrequencyGrid, FrequencyScaling, Joules,
        PlatformPowerModel, PlatformState, Policy, PowerError, SleepProgram, SleepStage,
        SystemPowerModel, SystemState, VoltageLaw, Watts,
    };
}
