use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Instantaneous power in watts.
///
/// A thin newtype so that power figures cannot be confused with energies,
/// times, or frequencies in API signatures.
///
/// ```
/// use sleepscale_power::{Watts, Joules};
/// let p = Watts::new(50.0);
/// let e: Joules = p * 2.0; // 2 seconds at 50 W
/// assert_eq!(e.as_joules(), 100.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Watts(f64);

impl Watts {
    /// Zero watts.
    pub const ZERO: Watts = Watts(0.0);

    /// Wraps a raw watt value.
    pub fn new(watts: f64) -> Watts {
        Watts(watts)
    }

    /// Returns the raw value in watts.
    pub fn as_watts(self) -> f64 {
        self.0
    }

    /// True if the value is finite and non-negative.
    pub fn is_valid(self) -> bool {
        self.0.is_finite() && self.0 >= 0.0
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} W", self.0)
    }
}

impl Add for Watts {
    type Output = Watts;
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Joules;
    /// Power times seconds yields energy.
    fn mul(self, seconds: f64) -> Joules {
        Joules(self.0 * seconds)
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        Watts(iter.map(|w| w.0).sum())
    }
}

/// Energy in joules.
///
/// Produced by integrating [`Watts`] over time; divide by a duration to get
/// average power back.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Joules(f64);

impl Joules {
    /// Zero joules.
    pub const ZERO: Joules = Joules(0.0);

    /// Wraps a raw joule value.
    pub fn new(joules: f64) -> Joules {
        Joules(joules)
    }

    /// Returns the raw value in joules.
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// Average power over `seconds`.
    ///
    /// Returns [`Watts::ZERO`] when `seconds` is zero so that empty
    /// measurement windows degrade gracefully.
    pub fn average_over(self, seconds: f64) -> Watts {
        if seconds == 0.0 {
            Watts::ZERO
        } else {
            Watts(self.0 / seconds)
        }
    }
}

impl fmt::Display for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} J", self.0)
    }
}

impl Add for Joules {
    type Output = Joules;
    fn add(self, rhs: Joules) -> Joules {
        Joules(self.0 + rhs.0)
    }
}

impl AddAssign for Joules {
    fn add_assign(&mut self, rhs: Joules) {
        self.0 += rhs.0;
    }
}

impl Sub for Joules {
    type Output = Joules;
    fn sub(self, rhs: Joules) -> Joules {
        Joules(self.0 - rhs.0)
    }
}

impl Div<f64> for Joules {
    type Output = Joules;
    fn div(self, rhs: f64) -> Joules {
        Joules(self.0 / rhs)
    }
}

impl Sum for Joules {
    fn sum<I: Iterator<Item = Joules>>(iter: I) -> Joules {
        Joules(iter.map(|j| j.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watts_times_time_is_energy() {
        let e = Watts::new(100.0) * 3.5;
        assert!((e.as_joules() - 350.0).abs() < 1e-12);
    }

    #[test]
    fn energy_average_round_trip() {
        let e = Joules::new(500.0);
        assert!((e.average_over(10.0).as_watts() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn average_over_zero_window_is_zero() {
        assert_eq!(Joules::new(123.0).average_over(0.0), Watts::ZERO);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Watts = [Watts::new(1.0), Watts::new(2.0), Watts::new(3.0)].into_iter().sum();
        assert!((total.as_watts() - 6.0).abs() < 1e-12);
        let mut acc = Joules::ZERO;
        acc += Joules::new(2.0);
        acc += Joules::new(3.0);
        assert!(((acc - Joules::new(1.0)).as_joules() - 4.0).abs() < 1e-12);
        assert!(((acc / 2.0).as_joules() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn validity() {
        assert!(Watts::new(0.0).is_valid());
        assert!(!Watts::new(-1.0).is_valid());
        assert!(!Watts::new(f64::INFINITY).is_valid());
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(Watts::new(1.5).to_string(), "1.50 W");
        assert_eq!(Joules::new(2.0).to_string(), "2.00 J");
    }
}
