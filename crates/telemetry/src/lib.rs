//! Deterministic telemetry for SleepScale runs: structured trace
//! events, pluggable sinks, and a worker-invariant metrics registry.
//!
//! Every run of the simulator — single server or 100k-server sharded
//! fleet — is a deterministic function of its inputs, and PR 10 makes
//! its *internals* observable under the same contract. A
//! [`TraceEvent`] records one simulation fact (a C-state residency
//! segment, a wake transition, an epoch policy decision, a dispatch
//! spill, an autoscaler park/wake) derived **only from simulation
//! state** — never wall-clock time or thread identity — so a trace is
//! byte-identical across worker and shard counts, and doubles as a
//! correctness oracle: replaying the trace reproduces the engine's
//! `Residency` accounting bit for bit and its `EnergyLedger` idle-side
//! energy to floating-point round-off.
//!
//! The pieces:
//!
//! * [`TraceEvent`] + [`ScaleCause`] — the event schema, with a
//!   hand-rolled JSONL round-trip ([`TraceEvent::to_json_line`] /
//!   [`TraceEvent::from_json_line`]) and a lossy human-oriented CSV
//!   rendering (the offline `serde` stand-in is marker-only, so the
//!   wire format lives here).
//! * [`TraceBuffer`] — the per-server accumulation vehicle. Engines
//!   buffer events per slot and merge in slot order at the end of the
//!   run; sinks are never called from parallel code.
//! * [`TraceSink`] — terminal consumers: [`NullSink`] (the default:
//!   no allocation, no work), [`MemorySink`] (with reconciliation
//!   helpers), and a buffered [`FileSink`] (JSONL or CSV).
//! * [`MetricsRegistry`] — named monotonic counters merged in
//!   slot/shard order, so values are worker- and shard-count
//!   invariant.
//! * [`TelemetrySpec`] / [`TelemetryReport`] — the declarative knob a
//!   `Scenario` carries and the collected result a `ScenarioReport`
//!   surfaces.
//!
//! The zero-overhead contract: a run with telemetry disabled takes
//! exactly the pre-PR-10 code paths — per emit site the only added
//! work is one `Option` check — and produces byte-identical reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use sleepscale_power::SystemState;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Why the autoscaler changed (or pinned) a group's active count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScaleCause {
    /// Utilization fell below the park threshold.
    LowUtilization {
        /// The group utilization that triggered the decision.
        utilization: f64,
    },
    /// Utilization rose above the wake threshold.
    HighUtilization {
        /// The group utilization that triggered the decision.
        utilization: f64,
    },
    /// A QoS miss in the previous epoch forced the group to full size.
    QosPressure,
}

impl ScaleCause {
    fn tag(&self) -> &'static str {
        match self {
            ScaleCause::LowUtilization { .. } => "low_utilization",
            ScaleCause::HighUtilization { .. } => "high_utilization",
            ScaleCause::QosPressure => "qos_pressure",
        }
    }

    /// Human-readable rendering, e.g. `"low_utilization (u=0.12)"`.
    pub fn describe(&self) -> String {
        match self {
            ScaleCause::LowUtilization { utilization } => {
                format!("low_utilization (u={utilization:.3})")
            }
            ScaleCause::HighUtilization { utilization } => {
                format!("high_utilization (u={utilization:.3})")
            }
            ScaleCause::QosPressure => "qos_pressure".into(),
        }
    }
}

/// One structured simulation fact. Every field derives from simulation
/// state (times are simulation seconds, servers are fleet-order slot
/// indices), which is what makes traces a determinism surface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The server occupied a sleep-ladder C-state for `seconds`
    /// starting at `start`, drawing `watts`.
    CState {
        /// Fleet-order slot index (0 for single-server runs).
        server: u32,
        /// Segment start, simulation seconds.
        start: f64,
        /// Segment length, seconds.
        seconds: f64,
        /// The occupied system state.
        state: SystemState,
        /// Power drawn during the segment, watts.
        watts: f64,
    },
    /// Pre-`τ₁` idle charged at active power (the appendix's `P_0`
    /// term): the server is idle but has not yet entered the ladder.
    ActiveIdle {
        /// Fleet-order slot index.
        server: u32,
        /// Segment start, simulation seconds.
        start: f64,
        /// Segment length, seconds.
        seconds: f64,
        /// Power drawn during the segment, watts.
        watts: f64,
    },
    /// A wake transition: an arrival (or autoscaler unpark) caught the
    /// server in `from` and paid `latency` seconds at `watts`.
    Wake {
        /// Fleet-order slot index.
        server: u32,
        /// When the wake began, simulation seconds.
        at: f64,
        /// The sleep state the server woke from (`None` = still in
        /// pre-`τ₁` active idle, no latency paid).
        from: Option<SystemState>,
        /// Wake latency paid, seconds.
        latency: f64,
        /// Power drawn during the wake, watts.
        watts: f64,
    },
    /// An epoch-boundary policy decision: the strategy chose
    /// `(frequency, program)` for `epoch` from `predicted_rho`.
    EpochDecision {
        /// Fleet-order slot index.
        server: u32,
        /// Epoch index, from 0.
        epoch: u32,
        /// The predictor's load estimate the selection keyed on.
        predicted_rho: f64,
        /// The chosen normalized frequency.
        frequency: f64,
        /// The chosen sleep program's label.
        program: String,
        /// Candidate policies evaluated (0 = characterization-cache
        /// hit).
        evaluated: u32,
        /// Whether the decision came from the characterization cache.
        cache_hit: bool,
    },
    /// The chosen frequency changed between consecutive epochs.
    FrequencyChange {
        /// Fleet-order slot index.
        server: u32,
        /// The epoch whose decision changed the frequency.
        epoch: u32,
        /// The previous epoch's frequency.
        from: f64,
        /// The new frequency.
        to: f64,
    },
    /// Class-affinity dispatch could not place a job on its preferred
    /// group and spilled fleet-wide (or fell back to minimum backlog).
    DispatchSpill {
        /// The job's id.
        job: u64,
        /// The job's traffic class.
        class: u16,
        /// The class's preferred group index.
        preferred_group: u32,
        /// The slot the job actually landed on.
        target_server: u32,
        /// True if even the spill found no idle server and the job
        /// fell back to the minimum-backlog slot.
        fallback: bool,
    },
    /// The autoscaler parked a drained server.
    Park {
        /// Fleet-order slot index.
        server: u32,
        /// Park instant (the epoch boundary), simulation seconds.
        at: f64,
        /// Why the controller shrank the group.
        cause: ScaleCause,
    },
    /// The autoscaler returned a parked server to service.
    Unpark {
        /// Fleet-order slot index.
        server: u32,
        /// Wake instant (the epoch boundary), simulation seconds.
        at: f64,
        /// Why the controller grew the group.
        cause: ScaleCause,
    },
}

/// Escapes a string for a JSON value position.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Reverses [`escape_json`].
fn unescape_json(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Formats an `f64` deterministically for a JSON value position:
/// shortest round-trip form (`Debug`), `null` if non-finite.
fn fmt_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_field_f64(out: &mut String, key: &str, v: f64) {
    let _ = write!(out, ",\"{key}\":");
    fmt_f64(v, out);
}

fn push_field_u64(out: &mut String, key: &str, v: u64) {
    let _ = write!(out, ",\"{key}\":{v}");
}

fn push_field_str(out: &mut String, key: &str, v: &str) {
    let _ = write!(out, ",\"{key}\":\"");
    escape_json(v, out);
    out.push('"');
}

fn push_field_bool(out: &mut String, key: &str, v: bool) {
    let _ = write!(out, ",\"{key}\":{v}");
}

/// Resolves a paper-style label (`"C6S3"`, `"C0(i)S0(i)"`, …) back to
/// its [`SystemState`]. Covers all six legal Table-3 pairs.
fn state_from_label(label: &str) -> Option<SystemState> {
    let mut all = vec![SystemState::C0A_S0A];
    all.extend(SystemState::LOW_POWER_LADDER);
    all.into_iter().find(|s| s.label() == label)
}

impl TraceEvent {
    /// The event's type tag, as written in the JSONL `event` field.
    pub fn tag(&self) -> &'static str {
        match self {
            TraceEvent::CState { .. } => "cstate",
            TraceEvent::ActiveIdle { .. } => "active_idle",
            TraceEvent::Wake { .. } => "wake",
            TraceEvent::EpochDecision { .. } => "epoch_decision",
            TraceEvent::FrequencyChange { .. } => "freq_change",
            TraceEvent::DispatchSpill { .. } => "dispatch_spill",
            TraceEvent::Park { .. } => "park",
            TraceEvent::Unpark { .. } => "unpark",
        }
    }

    /// The slot index the event concerns (`None` for dispatch events,
    /// which belong to the fleet rather than one server).
    pub fn server(&self) -> Option<u32> {
        match self {
            TraceEvent::CState { server, .. }
            | TraceEvent::ActiveIdle { server, .. }
            | TraceEvent::Wake { server, .. }
            | TraceEvent::EpochDecision { server, .. }
            | TraceEvent::FrequencyChange { server, .. }
            | TraceEvent::Park { server, .. }
            | TraceEvent::Unpark { server, .. } => Some(*server),
            TraceEvent::DispatchSpill { .. } => None,
        }
    }

    /// Serializes the event as one flat JSON object (no trailing
    /// newline). The writer is a pure function of the event, so equal
    /// traces serialize to equal bytes.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"event\":\"{}\"", self.tag());
        match self {
            TraceEvent::CState { server, start, seconds, state, watts } => {
                push_field_u64(&mut out, "server", u64::from(*server));
                push_field_f64(&mut out, "start", *start);
                push_field_f64(&mut out, "seconds", *seconds);
                push_field_str(&mut out, "state", &state.label());
                push_field_f64(&mut out, "watts", *watts);
            }
            TraceEvent::ActiveIdle { server, start, seconds, watts } => {
                push_field_u64(&mut out, "server", u64::from(*server));
                push_field_f64(&mut out, "start", *start);
                push_field_f64(&mut out, "seconds", *seconds);
                push_field_f64(&mut out, "watts", *watts);
            }
            TraceEvent::Wake { server, at, from, latency, watts } => {
                push_field_u64(&mut out, "server", u64::from(*server));
                push_field_f64(&mut out, "at", *at);
                if let Some(state) = from {
                    push_field_str(&mut out, "from", &state.label());
                }
                push_field_f64(&mut out, "latency", *latency);
                push_field_f64(&mut out, "watts", *watts);
            }
            TraceEvent::EpochDecision {
                server,
                epoch,
                predicted_rho,
                frequency,
                program,
                evaluated,
                cache_hit,
            } => {
                push_field_u64(&mut out, "server", u64::from(*server));
                push_field_u64(&mut out, "epoch", u64::from(*epoch));
                push_field_f64(&mut out, "predicted_rho", *predicted_rho);
                push_field_f64(&mut out, "frequency", *frequency);
                push_field_str(&mut out, "program", program);
                push_field_u64(&mut out, "evaluated", u64::from(*evaluated));
                push_field_bool(&mut out, "cache_hit", *cache_hit);
            }
            TraceEvent::FrequencyChange { server, epoch, from, to } => {
                push_field_u64(&mut out, "server", u64::from(*server));
                push_field_u64(&mut out, "epoch", u64::from(*epoch));
                push_field_f64(&mut out, "from", *from);
                push_field_f64(&mut out, "to", *to);
            }
            TraceEvent::DispatchSpill { job, class, preferred_group, target_server, fallback } => {
                push_field_u64(&mut out, "job", *job);
                push_field_u64(&mut out, "class", u64::from(*class));
                push_field_u64(&mut out, "preferred_group", u64::from(*preferred_group));
                push_field_u64(&mut out, "target_server", u64::from(*target_server));
                push_field_bool(&mut out, "fallback", *fallback);
            }
            TraceEvent::Park { server, at, cause } | TraceEvent::Unpark { server, at, cause } => {
                push_field_u64(&mut out, "server", u64::from(*server));
                push_field_f64(&mut out, "at", *at);
                push_field_str(&mut out, "cause", cause.tag());
                match cause {
                    ScaleCause::LowUtilization { utilization }
                    | ScaleCause::HighUtilization { utilization } => {
                        push_field_f64(&mut out, "utilization", *utilization);
                    }
                    ScaleCause::QosPressure => {}
                }
            }
        }
        out.push('}');
        out
    }

    /// Parses one [`TraceEvent::to_json_line`] line back into an
    /// event. Returns `None` for malformed or unknown lines.
    pub fn from_json_line(line: &str) -> Option<TraceEvent> {
        let tag = json_str(line, "event")?;
        let server = || json_u64(line, "server").map(|v| v as u32);
        match tag.as_str() {
            "cstate" => Some(TraceEvent::CState {
                server: server()?,
                start: json_f64(line, "start")?,
                seconds: json_f64(line, "seconds")?,
                state: state_from_label(&json_str(line, "state")?)?,
                watts: json_f64(line, "watts")?,
            }),
            "active_idle" => Some(TraceEvent::ActiveIdle {
                server: server()?,
                start: json_f64(line, "start")?,
                seconds: json_f64(line, "seconds")?,
                watts: json_f64(line, "watts")?,
            }),
            "wake" => Some(TraceEvent::Wake {
                server: server()?,
                at: json_f64(line, "at")?,
                from: match json_str(line, "from") {
                    Some(label) => Some(state_from_label(&label)?),
                    None => None,
                },
                latency: json_f64(line, "latency")?,
                watts: json_f64(line, "watts")?,
            }),
            "epoch_decision" => Some(TraceEvent::EpochDecision {
                server: server()?,
                epoch: json_u64(line, "epoch")? as u32,
                predicted_rho: json_f64(line, "predicted_rho")?,
                frequency: json_f64(line, "frequency")?,
                program: json_str(line, "program")?,
                evaluated: json_u64(line, "evaluated")? as u32,
                cache_hit: json_bool(line, "cache_hit")?,
            }),
            "freq_change" => Some(TraceEvent::FrequencyChange {
                server: server()?,
                epoch: json_u64(line, "epoch")? as u32,
                from: json_f64(line, "from")?,
                to: json_f64(line, "to")?,
            }),
            "dispatch_spill" => Some(TraceEvent::DispatchSpill {
                job: json_u64(line, "job")?,
                class: json_u64(line, "class")? as u16,
                preferred_group: json_u64(line, "preferred_group")? as u32,
                target_server: json_u64(line, "target_server")? as u32,
                fallback: json_bool(line, "fallback")?,
            }),
            "park" | "unpark" => {
                let cause = match json_str(line, "cause")?.as_str() {
                    "low_utilization" => {
                        ScaleCause::LowUtilization { utilization: json_f64(line, "utilization")? }
                    }
                    "high_utilization" => {
                        ScaleCause::HighUtilization { utilization: json_f64(line, "utilization")? }
                    }
                    "qos_pressure" => ScaleCause::QosPressure,
                    _ => return None,
                };
                let (server, at) = (server()?, json_f64(line, "at")?);
                Some(if tag == "park" {
                    TraceEvent::Park { server, at, cause }
                } else {
                    TraceEvent::Unpark { server, at, cause }
                })
            }
            _ => None,
        }
    }

    /// The fixed CSV header matching [`TraceEvent::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "event,server,t,seconds,state,watts,detail"
    }

    /// A lossy human-oriented CSV rendering (JSONL is the round-trip
    /// format; use this for spreadsheet digestion).
    pub fn to_csv_row(&self) -> String {
        match self {
            TraceEvent::CState { server, start, seconds, state, watts } => {
                format!("cstate,{server},{start:?},{seconds:?},{},{watts:?},", state.label())
            }
            TraceEvent::ActiveIdle { server, start, seconds, watts } => {
                format!("active_idle,{server},{start:?},{seconds:?},,{watts:?},")
            }
            TraceEvent::Wake { server, at, from, latency, watts } => format!(
                "wake,{server},{at:?},{latency:?},{},{watts:?},",
                from.map(|s| s.label()).unwrap_or_default()
            ),
            TraceEvent::EpochDecision {
                server,
                epoch,
                predicted_rho,
                frequency,
                program,
                evaluated,
                cache_hit,
            } => format!(
                "epoch_decision,{server},{epoch},,,,f={frequency:?} program={} \
                 rho={predicted_rho:?} evaluated={evaluated} cache_hit={cache_hit}",
                program.replace(',', ";")
            ),
            TraceEvent::FrequencyChange { server, epoch, from, to } => {
                format!("freq_change,{server},{epoch},,,,{from:?}->{to:?}")
            }
            TraceEvent::DispatchSpill { job, class, preferred_group, target_server, fallback } => {
                format!(
                    "dispatch_spill,,,,,,job={job} class={class} preferred={preferred_group} \
                     target={target_server} fallback={fallback}"
                )
            }
            TraceEvent::Park { server, at, cause } => {
                format!("park,{server},{at:?},,,,{}", cause.describe())
            }
            TraceEvent::Unpark { server, at, cause } => {
                format!("unpark,{server},{at:?},,,,{}", cause.describe())
            }
        }
    }
}

/// Locates the raw value substring for `key` in a flat JSON object
/// line, respecting string quoting.
fn json_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let mut search = 0;
    while let Some(rel) = line[search..].find(&pat) {
        let pos = search + rel;
        // A real key is preceded by `{` or `,`; anything else is a
        // match inside a string value.
        let prev = line[..pos].chars().next_back();
        if !matches!(prev, Some('{') | Some(',')) {
            search = pos + pat.len();
            continue;
        }
        let rest = &line[pos + pat.len()..];
        if let Some(stripped) = rest.strip_prefix('"') {
            // String value: scan to the closing unescaped quote.
            let mut escaped = false;
            for (i, c) in stripped.char_indices() {
                match c {
                    '\\' if !escaped => escaped = true,
                    '"' if !escaped => return Some(&stripped[..i]),
                    _ => escaped = false,
                }
            }
            return None;
        }
        let end = rest.find([',', '}'])?;
        return Some(&rest[..end]);
    }
    None
}

fn json_str(line: &str, key: &str) -> Option<String> {
    unescape_json(json_raw(line, key)?)
}

fn json_f64(line: &str, key: &str) -> Option<f64> {
    json_raw(line, key)?.parse().ok()
}

fn json_u64(line: &str, key: &str) -> Option<u64> {
    json_raw(line, key)?.parse().ok()
}

fn json_bool(line: &str, key: &str) -> Option<bool> {
    json_raw(line, key)?.parse().ok()
}

/// Serializes events as JSONL (one [`TraceEvent::to_json_line`] per
/// line, trailing newline included when non-empty).
pub fn events_to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for event in events {
        out.push_str(&event.to_json_line());
        out.push('\n');
    }
    out
}

/// Parses a JSONL trace back into events, skipping blank lines.
/// Returns `None` if any non-blank line fails to parse.
pub fn events_from_jsonl(text: &str) -> Option<Vec<TraceEvent>> {
    text.lines().filter(|l| !l.trim().is_empty()).map(TraceEvent::from_json_line).collect()
}

/// A per-server event accumulator. Engines keep one per slot, push
/// into it from whatever thread owns the slot, and merge buffers in
/// fleet slot order when the run closes — the trace's determinism
/// comes from this structural ordering, not from sink locking.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBuffer {
    server: u32,
    events: Vec<TraceEvent>,
}

impl TraceBuffer {
    /// An empty buffer for slot `server`.
    pub fn new(server: u32) -> TraceBuffer {
        TraceBuffer { server, events: Vec::new() }
    }

    /// The slot this buffer records for.
    pub fn server(&self) -> u32 {
        self.server
    }

    /// Appends one event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The events recorded so far, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the buffer, yielding its events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

/// A terminal consumer of an ordered event stream. Sinks receive the
/// already-merged deterministic stream; they are never called from
/// parallel code.
pub trait TraceSink {
    /// Consumes one event.
    fn record(&mut self, event: &TraceEvent);

    /// Flushes any buffered output.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error the sink encountered.
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The default sink: discards everything, allocates nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: &TraceEvent) {}
}

/// Collects events in memory and offers the reconciliation views the
/// `obs` gate and the property suite pin against engine accounting.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The collected events, in arrival order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the sink, yielding its events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Per-C-state residency seconds, accumulated find-or-push in
    /// first-entered order — the *same* fold the engine's `Residency`
    /// performs, so on a single-server trace the result equals
    /// `Residency::states()` bit for bit.
    pub fn state_residency(&self) -> Vec<(SystemState, f64)> {
        let mut states: Vec<(SystemState, f64)> = Vec::new();
        for event in &self.events {
            if let TraceEvent::CState { state, seconds, .. } = event {
                if let Some(entry) = states.iter_mut().find(|(s, _)| s == state) {
                    entry.1 += seconds;
                } else {
                    states.push((*state, *seconds));
                }
            }
        }
        states
    }

    /// Total pre-`τ₁` active-idle seconds (sequential sum, matching
    /// the engine's accumulation order on a single-server trace).
    pub fn active_idle_seconds(&self) -> f64 {
        // fold from +0.0, not `.sum()`: the std sum folds from -0.0,
        // which would break bit-parity with the engine's accumulator
        // on traces with no such segments.
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ActiveIdle { seconds, .. } => Some(*seconds),
                _ => None,
            })
            .fold(0.0, |acc, s| acc + s)
    }

    /// Total wake-latency seconds.
    pub fn waking_seconds(&self) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Wake { latency, .. } => Some(*latency),
                _ => None,
            })
            .fold(0.0, |acc, s| acc + s)
    }

    /// Idle-side energy implied by the trace, joules: every C-state,
    /// active-idle, and wake segment at its recorded power. Matches
    /// the engine ledger's `idle_energy()` (total minus class-tagged
    /// active energy) to floating-point round-off.
    pub fn idle_energy_joules(&self) -> f64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEvent::CState { seconds, watts, .. }
                | TraceEvent::ActiveIdle { seconds, watts, .. } => seconds * watts,
                TraceEvent::Wake { latency, watts, .. } => latency * watts,
                _ => 0.0,
            })
            .fold(0.0, |acc, j| acc + j)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }
}

/// On-disk trace format for [`FileSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line; round-trips via
    /// [`events_from_jsonl`].
    Jsonl,
    /// Fixed-column CSV with a header row; lossy, human-oriented.
    Csv,
}

/// A buffered file sink writing JSONL or CSV.
#[derive(Debug)]
pub struct FileSink {
    out: BufWriter<File>,
    format: TraceFormat,
    error: Option<io::Error>,
}

impl FileSink {
    /// Creates (truncating) `path` and, for CSV, writes the header
    /// row.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created
    /// or the header written.
    pub fn create(path: impl AsRef<Path>, format: TraceFormat) -> io::Result<FileSink> {
        let mut out = BufWriter::new(File::create(path)?);
        if format == TraceFormat::Csv {
            writeln!(out, "{}", TraceEvent::csv_header())?;
        }
        Ok(FileSink { out, format, error: None })
    }

    fn write_line(&mut self, line: &str) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }
}

impl TraceSink for FileSink {
    fn record(&mut self, event: &TraceEvent) {
        let line = match self.format {
            TraceFormat::Jsonl => event.to_json_line(),
            TraceFormat::Csv => event.to_csv_row(),
        };
        self.write_line(&line);
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        self.out.flush()
    }
}

/// Canonical counter names the engines register, so consumers match
/// on constants rather than retyping strings.
pub mod metrics {
    /// Jobs completed across the fleet.
    pub const JOBS_TOTAL: &str = "jobs_total";
    /// Class-affinity jobs placed off their preferred group.
    pub const DISPATCH_SPILLS: &str = "dispatch_spills";
    /// Spills that found no idle server and fell back to minimum
    /// backlog.
    pub const DISPATCH_FALLBACKS: &str = "dispatch_fallbacks";
    /// Epoch decisions answered by the characterization cache.
    pub const CACHE_HITS: &str = "cache_hits";
    /// Epoch decisions that ran a candidate sweep.
    pub const CACHE_MISSES: &str = "cache_misses";
    /// Wake transitions out of a sleep-ladder state.
    pub const WAKE_TRANSITIONS: &str = "wake_transitions";
    /// Arrivals that caught the server in pre-`τ₁` active idle.
    pub const WAKES_WITHOUT_SLEEP: &str = "wakes_without_sleep";
    /// Servers the autoscaler parked.
    pub const AUTOSCALER_PARKS: &str = "autoscaler_parks";
    /// Parked servers the autoscaler returned to service.
    pub const AUTOSCALER_WAKES: &str = "autoscaler_wakes";

    /// The per-class job counter name for `class`.
    pub fn jobs_class(class: u16) -> String {
        format!("jobs_class{class}")
    }
}

/// Named monotonic counters in insertion order. Engines build one per
/// slot (or derive it from already-merged state) and fold registries
/// together in fleet slot order, which makes every value worker- and
/// shard-count invariant.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: Vec<(String, u64)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to `name`, creating the counter at the end of the
    /// insertion order if new.
    pub fn add(&mut self, name: &str, delta: u64) {
        if let Some(entry) = self.counters.iter_mut().find(|(n, _)| n == name) {
            entry.1 += delta;
        } else {
            self.counters.push((name.to_string(), delta));
        }
    }

    /// The counter's value (0 if never registered).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// All counters in insertion order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// Folds `other` into `self`, preserving `self`'s insertion order
    /// for shared names.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, value) in &other.counters {
            self.add(name, *value);
        }
    }

    /// True when no counter was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

/// The declarative telemetry request a `Scenario` carries: which
/// surfaces to collect. `None` on the scenario means the engines take
/// the untouched zero-overhead paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySpec {
    /// Collect the structured [`TraceEvent`] stream.
    pub trace_events: bool,
    /// Build the [`MetricsRegistry`].
    pub metrics: bool,
}

impl TelemetrySpec {
    /// Everything on: events and metrics.
    pub fn full() -> TelemetrySpec {
        TelemetrySpec { trace_events: true, metrics: true }
    }
}

impl Default for TelemetrySpec {
    fn default() -> TelemetrySpec {
        TelemetrySpec::full()
    }
}

/// What a telemetry-enabled run collected: the merged deterministic
/// event stream plus the counter registry.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// The merged event stream: per-server events in fleet slot
    /// order, then fleet-level events in simulation order.
    pub events: Vec<TraceEvent>,
    /// Monotonic counters, worker- and shard-count invariant.
    pub metrics: MetricsRegistry,
}

impl TelemetryReport {
    /// Serializes the event stream as JSONL.
    pub fn to_jsonl(&self) -> String {
        events_to_jsonl(&self.events)
    }

    /// The autoscaler park/unpark events, in simulation order.
    pub fn scale_events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Park { .. } | TraceEvent::Unpark { .. }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::ActiveIdle { server: 0, start: 0.0, seconds: 0.5, watts: 250.0 },
            TraceEvent::CState {
                server: 0,
                start: 0.5,
                seconds: 9.5,
                state: SystemState::C6_S3,
                watts: 28.1,
            },
            TraceEvent::Wake {
                server: 0,
                at: 10.0,
                from: Some(SystemState::C6_S3),
                latency: 1.0,
                watts: 250.0,
            },
            TraceEvent::Wake { server: 1, at: 12.0, from: None, latency: 0.0, watts: 250.0 },
            TraceEvent::EpochDecision {
                server: 1,
                epoch: 3,
                predicted_rho: 0.25,
                frequency: 0.6,
                program: "C6S3@0s, \"deep\"".into(),
                evaluated: 55,
                cache_hit: false,
            },
            TraceEvent::FrequencyChange { server: 1, epoch: 3, from: 1.0, to: 0.6 },
            TraceEvent::DispatchSpill {
                job: 42,
                class: 1,
                preferred_group: 0,
                target_server: 9,
                fallback: true,
            },
            TraceEvent::Park {
                server: 7,
                at: 3600.0,
                cause: ScaleCause::LowUtilization { utilization: 0.12 },
            },
            TraceEvent::Unpark { server: 7, at: 7200.0, cause: ScaleCause::QosPressure },
        ]
    }

    /// Every variant survives the JSONL round trip exactly.
    #[test]
    fn jsonl_round_trips() {
        let events = sample_events();
        let text = events_to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        let back = events_from_jsonl(&text).expect("trace parses");
        assert_eq!(back, events);
    }

    /// The writer is deterministic: equal events, equal bytes.
    #[test]
    fn writer_is_deterministic() {
        let a = events_to_jsonl(&sample_events());
        let b = events_to_jsonl(&sample_events());
        assert_eq!(a, b);
    }

    /// String values containing quotes, backslashes, and the `"key":`
    /// pattern itself do not confuse the flat parser.
    #[test]
    fn parser_respects_string_quoting() {
        let tricky = TraceEvent::EpochDecision {
            server: 0,
            epoch: 0,
            predicted_rho: 0.5,
            frequency: 1.0,
            program: "evil \"frequency\": \\ ,}".into(),
            evaluated: 1,
            cache_hit: true,
        };
        let line = tricky.to_json_line();
        assert_eq!(TraceEvent::from_json_line(&line), Some(tricky));
    }

    /// MemorySink residency folds in first-entered order like the
    /// engine's `Residency`.
    #[test]
    fn memory_sink_residency_order() {
        let mut sink = MemorySink::new();
        for (state, seconds) in
            [(SystemState::C1_S0I, 2.0), (SystemState::C6_S3, 5.0), (SystemState::C1_S0I, 3.0)]
        {
            sink.record(&TraceEvent::CState { server: 0, start: 0.0, seconds, state, watts: 1.0 });
        }
        assert_eq!(
            sink.state_residency(),
            vec![(SystemState::C1_S0I, 5.0), (SystemState::C6_S3, 5.0)]
        );
        assert!((sink.idle_energy_joules() - 10.0).abs() < 1e-12);
    }

    /// Registry merge is order-preserving and additive.
    #[test]
    fn registry_merges() {
        let mut a = MetricsRegistry::new();
        a.add(metrics::JOBS_TOTAL, 3);
        a.add(metrics::CACHE_HITS, 1);
        let mut b = MetricsRegistry::new();
        b.add(metrics::CACHE_HITS, 2);
        b.add(metrics::DISPATCH_SPILLS, 7);
        a.merge(&b);
        assert_eq!(a.get(metrics::JOBS_TOTAL), 3);
        assert_eq!(a.get(metrics::CACHE_HITS), 3);
        assert_eq!(a.get(metrics::DISPATCH_SPILLS), 7);
        assert_eq!(a.counters()[0].0, metrics::JOBS_TOTAL);
        assert_eq!(a.get("never"), 0);
    }

    /// CSV rows match the fixed header's column count.
    #[test]
    fn csv_shape() {
        let cols = TraceEvent::csv_header().split(',').count();
        for event in sample_events() {
            // The free-form detail column is sanitized to stay
            // comma-free, so plain splitting recovers the columns.
            assert_eq!(event.to_csv_row().split(',').count(), cols, "{event:?}");
        }
    }

    /// File sink round trip through a temp file.
    #[test]
    fn file_sink_round_trips() {
        let dir = std::env::temp_dir();
        let path = dir.join("sleepscale_telemetry_test_trace.jsonl");
        let events = sample_events();
        let mut sink = FileSink::create(&path, TraceFormat::Jsonl).unwrap();
        for e in &events {
            sink.record(e);
        }
        sink.flush().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(events_from_jsonl(&text).unwrap(), events);
        let _ = std::fs::remove_file(&path);
    }
}
